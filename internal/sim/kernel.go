package sim

// Ticker is a component stepped once per simulated cycle.
type Ticker interface {
	Tick(now uint64)
}

// TickFunc adapts a function to the Ticker interface.
type TickFunc func(now uint64)

// Tick implements Ticker.
func (f TickFunc) Tick(now uint64) { f(now) }

type hook struct {
	period uint64
	phase  uint64
	fn     func(now uint64)
}

// Sleeper is an optional Ticker extension that lets the kernel
// fast-forward over idle stretches. NextEventAt reports the earliest
// cycle >= from at which the component has work to do (NoEvent when it
// is fully drained); FastForward tells it the kernel is jumping the
// clock from `from` to `to` so it can account for the skipped cycles
// (cycle counters, refresh catch-up) without being ticked through them.
//
// The contract that keeps fast-forward bit-identical to spinning: a
// component whose NextEventAt(from) returns t > from must behave as a
// pure no-op if ticked at any cycle in [from, t) — when in doubt, return
// `from` (never sleep). The kernel only jumps when every registered
// ticker implements Sleeper and agrees the gap is dead, and never jumps
// over a periodic hook boundary.
type Sleeper interface {
	Ticker
	NextEventAt(from uint64) uint64
	FastForward(from, to uint64)
}

// NoEvent is the NextEventAt result of a component with no pending work.
const NoEvent = ^uint64(0)

// Kernel owns the global clock and the ordered set of components.
// The zero value is ready to use.
type Kernel struct {
	now     uint64
	tickers []Ticker
	hooks   []hook

	// Fast-forward state: enabled by SetFastForward, usable only once
	// every registered ticker implements Sleeper.
	ff       bool
	sleepers []Sleeper // non-nil parallel to tickers when all implement Sleeper
	skipped  uint64

	// Event-driven mode (events.go): non-nil after SetEventMode. Replaces
	// the tickers loop with per-component event heaps.
	ev *events
}

// Now returns the current cycle. The first cycle executed by Run is 0.
func (k *Kernel) Now() uint64 { return k.now }

// Register appends a component to the tick order. Components registered
// earlier observe state produced by later components one cycle delayed,
// so registration order is part of the model and must be deterministic.
// In event mode use RegisterEvent instead.
func (k *Kernel) Register(t Ticker) {
	if k.ev != nil {
		panic("sim: Register after SetEventMode")
	}
	k.tickers = append(k.tickers, t)
}

// Every schedules fn to run at every cycle c where c >= phase and
// (c-phase) is a multiple of period, before the tickers for that cycle.
// period must be non-zero.
func (k *Kernel) Every(period, phase uint64, fn func(now uint64)) {
	if period == 0 {
		panic("sim: Every with zero period")
	}
	k.hooks = append(k.hooks, hook{period: period, phase: phase, fn: fn})
}

// SetFastForward arms idle-cycle fast-forward. It takes effect only if
// every registered ticker implements Sleeper; otherwise Run keeps
// spinning cycle by cycle. Call after the final Register.
func (k *Kernel) SetFastForward(on bool) {
	k.ff = on
	k.sleepers = nil
	if !on {
		return
	}
	sl := make([]Sleeper, 0, len(k.tickers))
	for _, t := range k.tickers {
		s, ok := t.(Sleeper)
		if !ok {
			return
		}
		sl = append(sl, s)
	}
	k.sleepers = sl
}

// Skipped returns how many idle cycles fast-forward has jumped over.
func (k *Kernel) Skipped() uint64 { return k.skipped }

// Run advances the clock by cycles steps.
func (k *Kernel) Run(cycles uint64) {
	end := k.now + cycles
	if k.ev != nil {
		k.runEvents(end)
		return
	}
	for k.now < end {
		now := k.now
		for i := range k.hooks {
			h := &k.hooks[i]
			if now >= h.phase && (now-h.phase)%h.period == 0 {
				h.fn(now)
			}
		}
		for _, t := range k.tickers {
			t.Tick(now)
		}
		k.now++
		if k.sleepers != nil && k.now < end {
			k.fastForward(end)
		}
	}
}

// fastForward jumps the clock from k.now to the earliest cycle at which
// any component has work or any hook fires, bounded by end. Skipped
// cycles are provably no-ops under the Sleeper contract, so the jump is
// invisible in every simulated outcome.
func (k *Kernel) fastForward(end uint64) {
	from := k.now
	target := end
	for _, s := range k.sleepers {
		t := s.NextEventAt(from)
		if t <= from {
			return // someone is busy this cycle; no jump
		}
		if t < target {
			target = t
		}
	}
	if h := k.nextHookAt(from); h < target {
		target = h
	}
	if target <= from {
		return
	}
	for _, s := range k.sleepers {
		s.FastForward(from, target)
	}
	k.skipped += target - from
	k.now = target
}

// nextHookAt returns the earliest cycle >= from at which a periodic hook
// fires, or NoEvent with no hooks.
func (k *Kernel) nextHookAt(from uint64) uint64 {
	next := NoEvent
	for i := range k.hooks {
		h := &k.hooks[i]
		at := h.phase
		if from > h.phase {
			at = h.phase + (from-h.phase+h.period-1)/h.period*h.period
		}
		if at < next {
			next = at
		}
	}
	return next
}
