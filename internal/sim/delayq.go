package sim

// DelayQueue delivers items at or after a scheduled cycle. It is the
// building block for every latency-bearing link in the system (NoC hops,
// cache pipelines, DRAM data returns).
//
// Items scheduled for the same cycle pop in insertion order, keeping the
// simulation deterministic. The implementation is a binary min-heap keyed
// by (readyAt, sequence).
type DelayQueue[T any] struct {
	entries []delayEntry[T]
	seq     uint64
}

type delayEntry[T any] struct {
	readyAt uint64
	seq     uint64
	item    T
}

// Len returns the number of queued items, ready or not.
func (q *DelayQueue[T]) Len() int { return len(q.entries) }

// Grow pre-allocates capacity for n queued entries so a warmed queue
// never reallocates its backing array.
func (q *DelayQueue[T]) Grow(n int) {
	if n > cap(q.entries) {
		entries := make([]delayEntry[T], len(q.entries), n)
		copy(entries, q.entries)
		q.entries = entries
	}
}

// Push schedules item to become available at cycle readyAt.
func (q *DelayQueue[T]) Push(item T, readyAt uint64) {
	q.entries = append(q.entries, delayEntry[T]{readyAt: readyAt, seq: q.seq, item: item})
	q.seq++
	q.up(len(q.entries) - 1)
}

// Pop removes and returns the earliest item if it is ready at cycle now.
func (q *DelayQueue[T]) Pop(now uint64) (T, bool) {
	var zero T
	if len(q.entries) == 0 || q.entries[0].readyAt > now {
		return zero, false
	}
	item := q.entries[0].item
	last := len(q.entries) - 1
	q.entries[0] = q.entries[last]
	q.entries[last] = delayEntry[T]{} // release reference
	q.entries = q.entries[:last]
	if last > 0 {
		q.down(0)
	}
	return item, true
}

// Peek reports the earliest scheduled item without removing it.
func (q *DelayQueue[T]) Peek() (T, uint64, bool) {
	var zero T
	if len(q.entries) == 0 {
		return zero, 0, false
	}
	return q.entries[0].item, q.entries[0].readyAt, true
}

func (q *DelayQueue[T]) less(i, j int) bool {
	a, b := &q.entries[i], &q.entries[j]
	if a.readyAt != b.readyAt {
		return a.readyAt < b.readyAt
	}
	return a.seq < b.seq
}

func (q *DelayQueue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.entries[i], q.entries[parent] = q.entries[parent], q.entries[i]
		i = parent
	}
}

func (q *DelayQueue[T]) down(i int) {
	n := len(q.entries)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && q.less(left, smallest) {
			smallest = left
		}
		if right < n && q.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		q.entries[i], q.entries[smallest] = q.entries[smallest], q.entries[i]
		i = smallest
	}
}
