package sim

// Ring is a growable FIFO ring buffer. It replaces the
// `q = append(q[:0], q[1:]...)` and `q = q[1:]` slice-queue idioms on the
// simulator's hot paths: PushBack and PopFront are O(1), dequeue never
// memmoves, and — unlike the re-sliced-tail idiom — a popped slot is
// cleared immediately, so the queue retains no reference to items it no
// longer holds (the readQ trailing-slot leak this type was built to
// close).
//
// The buffer grows by doubling when full and never shrinks; after a
// warmup period a queue with a bounded population stops allocating
// entirely, which the zero-alloc steady-state tests rely on.
type Ring[T any] struct {
	buf  []T
	head int // index of the front element
	n    int // population
}

// Len returns the number of queued items.
func (r *Ring[T]) Len() int { return r.n }

// Grow ensures capacity for at least n items without further allocation.
func (r *Ring[T]) Grow(n int) {
	if n > len(r.buf) {
		r.resize(n)
	}
}

// PushBack appends an item at the tail.
func (r *Ring[T]) PushBack(v T) {
	if r.n == len(r.buf) {
		grown := 2 * r.n
		if grown < 8 {
			grown = 8
		}
		r.resize(grown)
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

// PopFront removes and returns the head item; ok is false when empty.
func (r *Ring[T]) PopFront() (v T, ok bool) {
	if r.n == 0 {
		return v, false
	}
	var zero T
	v = r.buf[r.head]
	r.buf[r.head] = zero // release the reference
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v, true
}

// Front returns the head item without removing it; ok is false when
// empty.
func (r *Ring[T]) Front() (v T, ok bool) {
	if r.n == 0 {
		return v, false
	}
	return r.buf[r.head], true
}

// Clear empties the ring, releasing every held reference but keeping the
// buffer capacity.
func (r *Ring[T]) Clear() {
	var zero T
	for i := 0; i < r.n; i++ {
		r.buf[(r.head+i)%len(r.buf)] = zero
	}
	r.head = 0
	r.n = 0
}

// At returns the i-th item from the front (0 = head). It panics when i
// is out of range, like a slice index.
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.n {
		panic("sim: ring index out of range")
	}
	return r.buf[(r.head+i)%len(r.buf)]
}

// resize re-packs the population at the start of a fresh buffer.
func (r *Ring[T]) resize(capacity int) {
	buf := make([]T, capacity)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
}
