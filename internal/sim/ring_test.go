package sim

import "testing"

func TestRingFIFOOrder(t *testing.T) {
	var q Ring[int]
	for i := 0; i < 100; i++ {
		q.PushBack(i)
	}
	if q.Len() != 100 {
		t.Fatalf("len = %d, want 100", q.Len())
	}
	for i := 0; i < 100; i++ {
		if front, ok := q.Front(); !ok || front != i {
			t.Fatalf("front = %d,%v, want %d", front, ok, i)
		}
		if v, ok := q.PopFront(); !ok || v != i {
			t.Fatalf("pop = %d,%v, want %d", v, ok, i)
		}
	}
	if _, ok := q.PopFront(); ok {
		t.Fatal("pop succeeded on empty ring")
	}
}

// TestRingWraparound drains and refills across the backing array's seam
// many times; order must survive every wrap and every resize.
func TestRingWraparound(t *testing.T) {
	var q Ring[uint64]
	next, expect := uint64(0), uint64(0)
	for round := 0; round < 200; round++ {
		push := round%7 + 1
		for i := 0; i < push; i++ {
			q.PushBack(next)
			next++
		}
		pop := round % 5
		for i := 0; i < pop && q.Len() > 0; i++ {
			v, _ := q.PopFront()
			if v != expect {
				t.Fatalf("round %d: popped %d, want %d", round, v, expect)
			}
			expect++
		}
	}
	for q.Len() > 0 {
		v, _ := q.PopFront()
		if v != expect {
			t.Fatalf("drain: popped %d, want %d", v, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d values, pushed %d", expect, next)
	}
}

func TestRingAtIndexesFromFront(t *testing.T) {
	var q Ring[int]
	// Force a wrapped layout: fill, drain some, refill past the seam.
	for i := 0; i < 8; i++ {
		q.PushBack(-1)
	}
	for i := 0; i < 5; i++ {
		q.PopFront()
	}
	q.Clear()
	for i := 0; i < 6; i++ {
		q.PushBack(i * 10)
	}
	for i := 0; i < q.Len(); i++ {
		if got := q.At(i); got != i*10 {
			t.Fatalf("At(%d) = %d, want %d", i, got, i*10)
		}
	}
}

func TestRingClear(t *testing.T) {
	var q Ring[int]
	for i := 0; i < 20; i++ {
		q.PushBack(i)
	}
	q.Clear()
	if q.Len() != 0 {
		t.Fatalf("len after clear = %d", q.Len())
	}
	q.PushBack(42)
	if v, ok := q.Front(); !ok || v != 42 {
		t.Fatal("ring unusable after clear")
	}
}

// TestRingGrowPreallocates pins the zero-allocation contract: after Grow,
// pushes up to that capacity never allocate.
func TestRingGrowPreallocates(t *testing.T) {
	var q Ring[int]
	q.Grow(64)
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < 64; i++ {
			q.PushBack(i)
		}
		for i := 0; i < 64; i++ {
			q.PopFront()
		}
	})
	if allocs != 0 {
		t.Fatalf("pre-grown ring allocated %v times per cycle", allocs)
	}
}
