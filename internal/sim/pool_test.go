package sim

import (
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryShardExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := NewPool(workers)
		for _, shards := range []int{1, 3, 8, 100} {
			hits := make([]atomic.Int64, shards)
			p.Run(shards, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if n := hits[i].Load(); n != 1 {
					t.Fatalf("workers=%d shards=%d: shard %d ran %d times", workers, shards, i, n)
				}
			}
		}
		p.Close()
	}
}

func TestPoolManyBatches(t *testing.T) {
	// The per-cycle usage pattern: thousands of small batches on one
	// long-lived pool must neither deadlock nor drop shards.
	p := NewPool(4)
	defer p.Close()
	var total atomic.Int64
	const batches = 5000
	for b := 0; b < batches; b++ {
		p.Run(3, func(i int) { total.Add(1) })
	}
	if got := total.Load(); got != 3*batches {
		t.Fatalf("ran %d shard calls, want %d", got, 3*batches)
	}
}

func TestPoolZeroWorkersDefaults(t *testing.T) {
	p := NewPool(0) // GOMAXPROCS default; must still run everything
	defer p.Close()
	var n atomic.Int64
	p.Run(16, func(int) { n.Add(1) })
	if n.Load() != 16 {
		t.Fatalf("ran %d of 16 shards", n.Load())
	}
}

// sleepTicker is a scriptable Sleeper: busy at the cycles in events,
// asleep otherwise. It records every tick and fast-forward span.
type sleepTicker struct {
	events  []uint64
	ticks   []uint64
	ffSpans [][2]uint64
}

func (s *sleepTicker) Tick(now uint64) { s.ticks = append(s.ticks, now) }

func (s *sleepTicker) NextEventAt(from uint64) uint64 {
	for _, e := range s.events {
		if e >= from {
			return e
		}
	}
	return NoEvent
}

func (s *sleepTicker) FastForward(from, to uint64) {
	s.ffSpans = append(s.ffSpans, [2]uint64{from, to})
}

func TestKernelFastForwardJumpsToNextEvent(t *testing.T) {
	var k Kernel
	s := &sleepTicker{events: []uint64{0, 100, 101, 500}}
	k.Register(s)
	k.SetFastForward(true)
	k.Run(1000)

	// The kernel must tick exactly the event cycles and skip every other
	// cycle of the run.
	want := []uint64{0, 100, 101, 500}
	if len(s.ticks) != len(want) {
		t.Fatalf("ticked %d cycles %v, want %v", len(s.ticks), s.ticks, want)
	}
	for i := range want {
		if s.ticks[i] != want[i] {
			t.Fatalf("tick %d at cycle %d, want %d (all: %v)", i, s.ticks[i], want[i], s.ticks)
		}
	}
	if got := k.Skipped(); got != 1000-uint64(len(want)) {
		t.Fatalf("skipped %d cycles, want %d", got, 1000-uint64(len(want)))
	}
	if k.Now() != 1000 {
		t.Fatalf("clock at %d, want 1000", k.Now())
	}
	// Spans must tile the gaps exactly: contiguous, in order, no overlap.
	prev := uint64(0)
	var spanned uint64
	for _, sp := range s.ffSpans {
		if sp[0] < prev || sp[1] <= sp[0] {
			t.Fatalf("bad span %v (prev end %d)", sp, prev)
		}
		spanned += sp[1] - sp[0]
		prev = sp[1]
	}
	if spanned != k.Skipped() {
		t.Fatalf("spans cover %d cycles, kernel skipped %d", spanned, k.Skipped())
	}
}

func TestKernelFastForwardStopsAtHooks(t *testing.T) {
	var k Kernel
	s := &sleepTicker{events: []uint64{0}}
	var hookAt []uint64
	k.Every(250, 0, func(now uint64) { hookAt = append(hookAt, now) })
	k.Register(s)
	k.SetFastForward(true)
	k.Run(1000)

	want := []uint64{0, 250, 500, 750}
	if len(hookAt) != len(want) {
		t.Fatalf("hook fired at %v, want %v", hookAt, want)
	}
	for i := range want {
		if hookAt[i] != want[i] {
			t.Fatalf("hook %d fired at %d, want %d", i, hookAt[i], want[i])
		}
	}
}

func TestKernelFastForwardDisabledWithNonSleeper(t *testing.T) {
	var k Kernel
	k.Register(&sleepTicker{})
	k.Register(TickFunc(func(uint64) {})) // not a Sleeper
	k.SetFastForward(true)
	k.Run(100)
	if k.Skipped() != 0 {
		t.Fatalf("kernel skipped %d cycles with a non-Sleeper registered", k.Skipped())
	}
}

func TestKernelFastForwardRespectsRunBoundary(t *testing.T) {
	var k Kernel
	s := &sleepTicker{events: []uint64{0}}
	k.Register(s)
	k.SetFastForward(true)
	k.Run(100)
	if k.Now() != 100 {
		t.Fatalf("clock overshot Run boundary: %d", k.Now())
	}
	k.Run(50)
	if k.Now() != 150 {
		t.Fatalf("clock at %d after second Run, want 150", k.Now())
	}
}
