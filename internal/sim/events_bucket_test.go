package sim

import "testing"

// These tests pin the bucket-queue internals of the event scheduler:
// the timing wheel covers [now, now+wheelW) and everything beyond it
// lives in the overflow ring, so each test steers events across that
// boundary and asserts the dispatch schedule is unaffected.

// TestEventKernelOverflowMigration schedules an event far beyond the
// wheel horizon: it must sit in overflow, let the clock jump straight
// to it, and dispatch exactly on time after migration.
func TestEventKernelOverflowMigration(t *testing.T) {
	if 5000-6 < wheelW {
		t.Fatalf("test assumes 5000 is beyond the wheel horizon %d", wheelW)
	}
	var k Kernel
	k.SetEventMode(1, nil)
	c := &evComp{t: t, id: 0, events: []uint64{5, 5000}}
	k.RegisterEvent(0, c)
	k.Run(6000)

	want := []uint64{5, 5000}
	if len(c.ticked) != len(want) || c.ticked[0] != want[0] || c.ticked[1] != want[1] {
		t.Fatalf("ticked at %v, want %v", c.ticked, want)
	}
	if c.horizon != 6000 {
		t.Fatalf("horizon %d, want 6000", c.horizon)
	}
	// Executed cycles: 0 (run entry), 5, and 5000.
	if k.Skipped() != 6000-3 {
		t.Fatalf("Skipped() = %d, want %d", k.Skipped(), 6000-3)
	}
}

// TestEventKernelWakeFromOverflow pulls a far-future (overflow-resident)
// component into the near-future wheel via Wake: the decrease-key must
// cross the wheel/overflow boundary cleanly.
func TestEventKernelWakeFromOverflow(t *testing.T) {
	var k Kernel
	k.SetEventMode(2, nil)
	p := &evComp{t: t, id: 0, events: []uint64{10}}
	consumer := &evComp{t: t, id: 1, events: []uint64{5000}, wakeals: true}
	k.RegisterEvent(0, p)
	consumerID := k.RegisterEvent(1, consumer)
	k.ev.dispatch = func(now uint64, class int, due []int) {
		for _, id := range due {
			k.ev.comps[id].s.Tick(now)
			if class == 0 && now == 10 {
				k.Wake(consumerID, 12)
			}
		}
	}
	k.Run(6000)
	if len(consumer.ticked) == 0 || consumer.ticked[0] != 12 {
		t.Fatalf("consumer ticked at %v, want first tick at 12", consumer.ticked)
	}
	// The original far-future event must survive the early no-op wake.
	if consumer.i != len(consumer.events) {
		t.Fatalf("consumer event at 5000 never executed; ticks %v", consumer.ticked)
	}
	if k.LateWakes() != 0 {
		t.Fatalf("LateWakes = %d, want 0", k.LateWakes())
	}
}

// TestEventKernelLateWakeCounted drives the one illegal wake shape — a
// wake targeting a cycle the component has already accounted — and
// asserts it is counted in LateWakes and deferred to the next cycle
// rather than silently dropped or double-dispatched.
func TestEventKernelLateWakeCounted(t *testing.T) {
	var k Kernel
	k.SetEventMode(2, nil)
	// a (class 0) drains before b (class 1) each cycle; b waking a for
	// the current cycle is therefore a backward edge.
	a := &evComp{t: t, id: 0, events: []uint64{5}, wakeals: true}
	b := &evComp{t: t, id: 1, events: []uint64{5}}
	aID := k.RegisterEvent(0, a)
	k.RegisterEvent(1, b)
	k.ev.dispatch = func(now uint64, class int, due []int) {
		for _, id := range due {
			k.ev.comps[id].s.Tick(now)
			if class == 1 && now == 5 {
				k.Wake(aID, 5)
			}
		}
	}
	k.Run(20)
	if k.LateWakes() != 1 {
		t.Fatalf("LateWakes = %d, want 1", k.LateWakes())
	}
	want := []uint64{5, 6}
	if len(a.ticked) != len(want) || a.ticked[0] != want[0] || a.ticked[1] != want[1] {
		t.Fatalf("a ticked at %v, want %v (late wake defers to the next cycle)", a.ticked, want)
	}
}

// TestEventKernelDirtyRekey mutates a sleeping component's schedule from
// a periodic hook and announces it with DirtyEvent: the post-hook rekey
// must discover the hook-created earlier work.
func TestEventKernelDirtyRekey(t *testing.T) {
	var k Kernel
	k.SetEventMode(1, nil)
	c := &evComp{t: t, id: 0, events: []uint64{200}}
	id := k.RegisterEvent(0, c)
	k.Every(30, 30, func(now uint64) {
		if now != 30 {
			return
		}
		// Overlay new state: work appears at cycle 40, which the
		// scheduler only learns about through the dirty mark.
		c.events = []uint64{40, 200}
		k.DirtyEvent(id)
		k.DirtyEvent(id) // idempotent
	})
	k.Run(300)
	want := []uint64{40, 200}
	if len(c.ticked) != len(want) || c.ticked[0] != want[0] || c.ticked[1] != want[1] {
		t.Fatalf("ticked at %v, want %v", c.ticked, want)
	}
}

// TestEventKernelClassStats checks the dispatch-occupancy counters: one
// component per class, visited = its number of dispatched events.
func TestEventKernelClassStats(t *testing.T) {
	var k Kernel
	k.SetEventMode(2, nil)
	a := &evComp{t: t, id: 0, events: []uint64{1, 4, 9}}
	b := &evComp{t: t, id: 1, events: []uint64{7, 9}}
	k.RegisterEvent(0, a)
	k.RegisterEvent(1, b)
	k.Run(20)
	reg, vis := k.EventClassStats()
	if len(reg) != 2 || reg[0] != 1 || reg[1] != 1 {
		t.Fatalf("registered = %v, want [1 1]", reg)
	}
	if len(vis) != 2 || vis[0] != 3 || vis[1] != 2 {
		t.Fatalf("visited = %v, want [3 2]", vis)
	}
}
