package sim

import (
	"math/rand"
	"testing"
)

// evComp is a scripted test component: it has work at a fixed set of
// cycles, counts ticks and fast-forwarded spans, and records every cycle
// at which it was ticked so tests can compare schedules exactly.
type evComp struct {
	t       *testing.T
	id      int
	events  []uint64 // sorted cycles with real work
	i       int      // next un-consumed event index
	ticked  []uint64
	ffSpan  uint64
	horizon uint64 // cycles accounted via Tick or FastForward
	wakeals bool   // tolerate no-op ticks at non-event cycles
}

func (c *evComp) Tick(now uint64) {
	c.ticked = append(c.ticked, now)
	if now < c.horizon {
		c.t.Fatalf("comp %d ticked at %d below accounting horizon %d", c.id, now, c.horizon)
	}
	c.horizon = now + 1
	for c.i < len(c.events) && c.events[c.i] <= now {
		if c.events[c.i] < now && !c.wakeals {
			c.t.Fatalf("comp %d event at %d executed late at %d", c.id, c.events[c.i], now)
		}
		c.i++
	}
}

func (c *evComp) NextEventAt(from uint64) uint64 {
	for _, e := range c.events[c.i:] {
		if e >= from {
			return e
		}
	}
	return NoEvent
}

func (c *evComp) FastForward(from, to uint64) {
	if from != c.horizon {
		c.t.Fatalf("comp %d FastForward from %d, horizon %d", c.id, from, c.horizon)
	}
	if to < from {
		c.t.Fatalf("comp %d FastForward backwards %d -> %d", c.id, from, to)
	}
	c.ffSpan += to - from
	c.horizon = to
}

func TestEventKernelDispatchesExactly(t *testing.T) {
	var k Kernel
	k.SetEventMode(2, nil)
	a := &evComp{t: t, id: 0, events: []uint64{0, 3, 3, 17, 40}}
	b := &evComp{t: t, id: 1, events: []uint64{5, 17}}
	k.RegisterEvent(0, a)
	k.RegisterEvent(1, b)
	k.Run(50)

	wantA := []uint64{0, 3, 17, 40}
	wantB := []uint64{5, 17}
	for i, want := range [][]uint64{wantA, wantB} {
		got := []*evComp{a, b}[i].ticked
		if len(got) != len(want) {
			t.Fatalf("comp %d ticked at %v, want %v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("comp %d ticked at %v, want %v", i, got, want)
			}
		}
	}
	// Every component is accounted through the full run: ticks + ff = 50.
	if a.horizon != 50 || b.horizon != 50 {
		t.Fatalf("horizons %d,%d want 50,50", a.horizon, b.horizon)
	}
	if got := uint64(len(a.ticked)) + a.ffSpan; got != 50 {
		t.Fatalf("comp 0 accounted %d cycles, want 50", got)
	}
	// The kernel executed only the union of event cycles: 0,3,5,17,40.
	if k.Skipped() != 50-5 {
		t.Fatalf("Skipped() = %d, want 45", k.Skipped())
	}
}

// TestEventKernelNeverTicksFuture is the tentpole property test: a
// component whose NextEventAt lies strictly in the future is never
// ticked by the event kernel. Randomized schedules across many seeds;
// the evComp harness fails the test on any tick at a non-event cycle
// (wakeals=false) and on any accounting gap or overlap.
func TestEventKernelNeverTicksFuture(t *testing.T) {
	const horizon = 400
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var k Kernel
		classes := 1 + rng.Intn(3)
		k.SetEventMode(classes, nil)
		comps := make([]*evComp, 1+rng.Intn(6))
		for i := range comps {
			var evs []uint64
			c := uint64(rng.Intn(5))
			for c < horizon {
				evs = append(evs, c)
				c += 1 + uint64(rng.Intn(60))
			}
			comps[i] = &evComp{t: t, id: i, events: evs}
			k.RegisterEvent(rng.Intn(classes), comps[i])
		}
		if rng.Intn(2) == 0 {
			k.Every(1+uint64(rng.Intn(90)), uint64(rng.Intn(40)), func(uint64) {})
		}
		k.Run(horizon)
		for i, c := range comps {
			if c.i != len(c.events) {
				t.Fatalf("seed %d comp %d: %d of %d events never executed",
					seed, i, len(c.events)-c.i, len(c.events))
			}
			if c.horizon != horizon {
				t.Fatalf("seed %d comp %d horizon %d want %d", seed, i, c.horizon, horizon)
			}
			// No tick landed at a cycle without due work (late events fail
			// inside Tick; here reject early/no-op ticks too).
			for _, at := range c.ticked {
				found := false
				for _, e := range c.events {
					if e == at {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("seed %d comp %d no-op tick at %d (NextEventAt was in the future)",
						seed, i, at)
				}
			}
		}
	}
}

func TestEventKernelHooksAreBarriers(t *testing.T) {
	var k Kernel
	k.SetEventMode(1, nil)
	c := &evComp{t: t, id: 0, events: []uint64{2, 95}}
	k.RegisterEvent(0, c)
	var hookAt []uint64
	k.Every(30, 10, func(now uint64) {
		hookAt = append(hookAt, now)
		// Barrier contract: the component is fully accounted before the
		// hook observes it.
		if c.horizon != now {
			t.Fatalf("hook at %d sees horizon %d, want %d", now, c.horizon, now)
		}
	})
	k.Run(100)
	want := []uint64{10, 40, 70}
	if len(hookAt) != len(want) {
		t.Fatalf("hooks fired at %v, want %v", hookAt, want)
	}
	for i := range want {
		if hookAt[i] != want[i] {
			t.Fatalf("hooks fired at %v, want %v", hookAt, want)
		}
	}
}

// TestEventKernelWake verifies the decrease-key path: a component parked
// far in the future is pulled forward by Wake and dispatched at the
// woken cycle.
func TestEventKernelWake(t *testing.T) {
	var k Kernel
	k.SetEventMode(2, nil)
	// Producer (class 0) has work at 5; consumer (class 1) believes it is
	// idle until 300 but the producer wakes it for cycle 6.
	consumer := &evComp{t: t, id: 1, events: []uint64{300}, wakeals: true}
	p := &evComp{t: t, id: 0, events: []uint64{5}}
	k.RegisterEvent(0, p)
	consumerID := k.RegisterEvent(1, consumer)
	k.ev.dispatch = func(now uint64, class int, due []int) {
		for _, id := range due {
			k.ev.comps[id].s.Tick(now)
			if class == 0 && now == 5 {
				k.Wake(consumerID, 6)
			}
		}
	}
	k.Run(400)
	if len(consumer.ticked) == 0 || consumer.ticked[0] != 6 {
		t.Fatalf("consumer ticked at %v, want first tick at 6", consumer.ticked)
	}
	if k.LateWakes() != 0 {
		t.Fatalf("LateWakes = %d, want 0", k.LateWakes())
	}
}

func TestEventKernelResync(t *testing.T) {
	var k Kernel
	k.SetEventMode(1, nil)
	c := &evComp{t: t, id: 0, events: []uint64{0, 50}}
	k.RegisterEvent(0, c)
	k.Run(10)
	// Simulate a checkpoint restore overlaying new state at cycle 10:
	// the component now has work at 20 that the heap does not know about.
	c.events = []uint64{20}
	c.i = 0
	c.horizon = k.Now()
	k.ResyncEvents()
	k.Run(30)
	found := false
	for _, at := range c.ticked {
		if at == 20 {
			found = true
		}
	}
	if !found {
		t.Fatalf("post-resync event at 20 never dispatched; ticks %v", c.ticked)
	}
}
