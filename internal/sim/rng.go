package sim

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift64* family) used by workload generators. Each component owns
// its own RNG seeded from the experiment seed, so adding or removing a
// component never perturbs the streams seen by the others.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to
// a fixed non-zero constant because the xorshift state must never be zero.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator.
func (r *RNG) Seed(seed uint64) {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	// Scramble the seed through splitmix64 so that consecutive small
	// seeds produce uncorrelated streams.
	z := seed + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	r.state = z
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
