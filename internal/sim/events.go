package sim

import "sort"

// This file implements the kernel's event-driven scheduling mode: the
// generalization of the whole-machine Sleeper seam to per-component
// event queues. In cycle mode (kernel.go) every registered Ticker is
// visited every cycle and the clock can only jump when the entire
// machine is idle. In event mode each component is registered
// individually with its own next-event time, the kernel keeps one small
// indexed min-heap per dispatch class, and a cycle visits only the
// components with due work. A component whose NextEventAt lies in the
// future is provably a no-op if ticked (the Sleeper contract), so
// skipping it is invisible in every simulated outcome — the same
// argument that makes whole-machine fast-forward bit-identical, applied
// per component.
//
// Ordering. Bit-identity requires that the components ticked on a given
// cycle run in exactly the order the cycle-stepped kernel would have run
// them. The kernel models this as dispatch classes drained in ascending
// class order; within a class the due set is handed to the dispatcher
// sorted by registration id, and the dispatcher applies any
// cycle-dependent permutation itself (the SoC rotates its L3-slice
// order). Same-cycle wakes may only target classes that have not yet
// drained this cycle — the SoC's dataflow (epoch → network → memory
// controllers → slices → tiles, with every backward edge carrying at
// least one cycle of modeled latency) guarantees this; the kernel counts
// any violation in LateWakes rather than diverging silently.
//
// Accounting. Components are fast-forwarded lazily: each tracks the
// cycle through which it has accounted (ticked or fast-forwarded), and
// is caught up immediately before it is next ticked. Periodic hooks are
// synchronization barriers — every component is caught up and re-keyed
// before a hook fires — so epoch-boundary reads (saturation windows,
// governor probes, metrics) observe exactly the state the cycle-stepped
// kernel would have produced.

// eventComp is one registered component's scheduling state.
type eventComp struct {
	s      Sleeper
	class  int
	key    uint64 // scheduled next-event cycle (heap key)
	pos    int    // position in its class heap; -1 while popped for dispatch
	synced uint64 // cycles < synced are accounted (ticked or fast-forwarded)
}

// events is the kernel's event-mode state.
type events struct {
	comps    []eventComp
	heaps    [][]int // per class: ids keyed by comps[id].key, ties by id
	due      []int   // per-cycle scratch
	dispatch func(now uint64, class int, due []int)

	lateWakes uint64
}

// SetEventMode switches the kernel to event-driven scheduling with the
// given number of dispatch classes. dispatch receives each cycle's due
// components one class at a time, in ascending class order, sorted by
// registration id; it must tick every component it is handed (skipping
// one would silently drop its work). A nil dispatch ticks due components
// directly. Call before RegisterEvent; incompatible with Register.
func (k *Kernel) SetEventMode(classes int, dispatch func(now uint64, class int, due []int)) {
	if len(k.tickers) > 0 {
		panic("sim: SetEventMode after Register")
	}
	k.ev = &events{
		heaps:    make([][]int, classes),
		dispatch: dispatch,
	}
}

// EventDriven reports whether the kernel is in event mode.
func (k *Kernel) EventDriven() bool { return k.ev != nil }

// RegisterEvent adds a component under a dispatch class and returns its
// id (the Wake handle). Registration order within a class defines the
// canonical intra-class dispatch order.
func (k *Kernel) RegisterEvent(class int, s Sleeper) int {
	ev := k.ev
	if ev == nil {
		panic("sim: RegisterEvent before SetEventMode")
	}
	if class < 0 || class >= len(ev.heaps) {
		panic("sim: RegisterEvent class out of range")
	}
	id := len(ev.comps)
	ev.comps = append(ev.comps, eventComp{s: s, class: class, pos: -1, synced: k.now})
	ev.push(id, s.NextEventAt(k.now))
	return id
}

// Wake tells the kernel a component may have work at cycle `at` —
// called at every cross-component push site, because a sleeping
// component is never re-polled. NextEventAt remains authoritative:
// waking an idle component early is a harmless no-op tick, and a
// component's own new work is re-read after every dispatch. Wakes are
// clamped to cycles the component has not yet accounted; a clamped wake
// at or before the current cycle is counted in LateWakes.
func (k *Kernel) Wake(id int, at uint64) {
	ev := k.ev
	if ev == nil {
		return
	}
	ec := &ev.comps[id]
	if at < ec.synced {
		if at <= k.now {
			ev.lateWakes++
		}
		at = ec.synced
	}
	if ec.pos < 0 || at >= ec.key {
		// Mid-dispatch (re-keyed from NextEventAt afterwards) or not an
		// improvement.
		return
	}
	ec.key = at
	ev.siftUp(ec.class, ec.pos)
}

// LateWakes returns how many wakes targeted an already-dispatched cycle
// (a violation of the forward-only same-cycle dataflow contract; always
// zero for the SoC's component graph).
func (k *Kernel) LateWakes() uint64 {
	if k.ev == nil {
		return 0
	}
	return k.ev.lateWakes
}

// ResyncEvents re-derives every component's heap key and accounting
// horizon from its current state at the kernel clock. Call after a
// checkpoint restore has overlaid component state.
func (k *Kernel) ResyncEvents() {
	ev := k.ev
	if ev == nil {
		return
	}
	for id := range ev.comps {
		ev.comps[id].synced = k.now
	}
	k.rekeyAll(k.now)
}

// runEvents is the event-mode Run loop.
func (k *Kernel) runEvents(end uint64) {
	ev := k.ev
	// Re-derive every key on entry: callers may mutate component state
	// between Run calls (warmups, stat resets, test scaffolding) without
	// issuing wakes. O(components) once per Run, not per cycle.
	k.rekeyAll(k.now)
	for k.now < end {
		now := k.now
		if k.hookDue(now) {
			// Hooks are synchronization barriers: catch every component
			// up and re-key from ground truth, so hook-driven state
			// changes (heartbeats, injected faults) reschedule sleepers.
			k.syncAll(now)
			for i := range k.hooks {
				h := &k.hooks[i]
				if now >= h.phase && (now-h.phase)%h.period == 0 {
					h.fn(now)
				}
			}
			k.rekeyAll(now)
		}
		for c := range ev.heaps {
			due := ev.popDue(c, now)
			if len(due) == 0 {
				continue
			}
			for _, id := range due {
				ev.catchUp(id, now)
			}
			if ev.dispatch != nil {
				ev.dispatch(now, c, due)
			} else {
				for _, id := range due {
					ev.comps[id].s.Tick(now)
				}
			}
			for _, id := range due {
				ec := &ev.comps[id]
				ec.synced = now + 1
				ev.push(id, ec.s.NextEventAt(now+1))
			}
		}
		k.now++
		if k.now >= end {
			break
		}
		// Jump the clock to the earliest scheduled event or hook.
		t := end
		for c := range ev.heaps {
			if len(ev.heaps[c]) > 0 {
				if key := ev.comps[ev.heaps[c][0]].key; key < t {
					t = key
				}
			}
		}
		if h := k.nextHookAt(k.now); h < t {
			t = h
		}
		if t > k.now {
			k.skipped += t - k.now
			k.now = t
		}
	}
	// Leave every component accounted through the end of the run, so
	// cycle-derived statistics (IPC, utilization windows) are exact.
	k.syncAll(end)
}

// hookDue reports whether any periodic hook fires at cycle now.
func (k *Kernel) hookDue(now uint64) bool {
	for i := range k.hooks {
		h := &k.hooks[i]
		if now >= h.phase && (now-h.phase)%h.period == 0 {
			return true
		}
	}
	return false
}

// syncAll fast-forwards every component's accounting through cycle `to`.
func (k *Kernel) syncAll(to uint64) {
	ev := k.ev
	for id := range ev.comps {
		ev.catchUp(id, to)
	}
}

// rekeyAll re-derives every heap key from NextEventAt at cycle `from`.
func (k *Kernel) rekeyAll(from uint64) {
	ev := k.ev
	for c := range ev.heaps {
		ev.heaps[c] = ev.heaps[c][:0]
	}
	for id := range ev.comps {
		ev.comps[id].pos = -1
		ev.push(id, ev.comps[id].s.NextEventAt(from))
	}
}

// catchUp accounts component id for the unticked cycles before `to`.
func (ev *events) catchUp(id int, to uint64) {
	ec := &ev.comps[id]
	if ec.synced < to {
		ec.s.FastForward(ec.synced, to)
		ec.synced = to
	}
}

// push (re)inserts component id with the given next-event cycle. Keys
// are clamped to the component's accounting horizon so a conservative
// NextEventAt can never schedule an already-accounted cycle.
func (ev *events) push(id int, at uint64) {
	ec := &ev.comps[id]
	if at < ec.synced {
		at = ec.synced
	}
	ec.key = at
	h := ev.heaps[ec.class]
	h = append(h, id)
	ev.heaps[ec.class] = h
	ec.pos = len(h) - 1
	ev.siftUp(ec.class, ec.pos)
}

// popDue removes every component of class c due at or before `now`,
// returning them sorted by registration id (the canonical intra-class
// order).
func (ev *events) popDue(c int, now uint64) []int {
	due := ev.due[:0]
	for len(ev.heaps[c]) > 0 {
		top := ev.heaps[c][0]
		if ev.comps[top].key > now {
			break
		}
		ev.popTop(c)
		due = append(due, top)
	}
	if len(due) > 1 {
		sort.Ints(due)
	}
	ev.due = due[:0] // retain capacity; the returned slice stays valid this cycle
	return due
}

// less orders the heap by (key, id): earliest event first, registration
// order breaking ties deterministically.
func (ev *events) less(a, b int) bool {
	ka, kb := ev.comps[a].key, ev.comps[b].key
	return ka < kb || (ka == kb && a < b)
}

func (ev *events) siftUp(c, i int) {
	h := ev.heaps[c]
	for i > 0 {
		parent := (i - 1) / 2
		if !ev.less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		ev.comps[h[i]].pos = i
		ev.comps[h[parent]].pos = parent
		i = parent
	}
}

func (ev *events) popTop(c int) {
	h := ev.heaps[c]
	top := h[0]
	ev.comps[top].pos = -1
	last := len(h) - 1
	if last > 0 {
		h[0] = h[last]
		ev.comps[h[0]].pos = 0
	}
	ev.heaps[c] = h[:last]
	ev.siftDown(c, 0)
}

func (ev *events) siftDown(c, i int) {
	h := ev.heaps[c]
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && ev.less(h[l], h[smallest]) {
			smallest = l
		}
		if r < n && ev.less(h[r], h[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		ev.comps[h[i]].pos = i
		ev.comps[h[smallest]].pos = smallest
		i = smallest
	}
}
