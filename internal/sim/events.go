package sim

import (
	"math/bits"
	"sort"
)

// This file implements the kernel's event-driven scheduling mode: the
// generalization of the whole-machine Sleeper seam to per-component
// event queues. In cycle mode (kernel.go) every registered Ticker is
// visited every cycle and the clock can only jump when the entire
// machine is idle. In event mode each component is registered
// individually with its own next-event time and a cycle visits only the
// components with due work. A component whose NextEventAt lies in the
// future is provably a no-op if ticked (the Sleeper contract), so
// skipping it is invisible in every simulated outcome — the same
// argument that makes whole-machine fast-forward bit-identical, applied
// per component.
//
// Scheduling structure. Each dispatch class keeps a timing wheel of
// wheelW one-cycle buckets covering [now, now+wheelW): schedule,
// decrease-key (wake), and per-cycle drain are all O(1) in the near
// future, which is the overwhelmingly common case (DRAM latencies,
// pacer grants, hop delays). Events at or beyond the wheel horizon —
// watchdog deadlines, long idle gaps — land in an unsorted per-class
// overflow ring with a lazily tracked minimum and are bulk-migrated
// into the wheel when the clock window reaches them, so each far-future
// event is touched O(1) amortized times. A per-wheel occupancy bitmap
// makes the idle-jump scan O(wheelW/64) words instead of O(wheelW)
// buckets.
//
// Ordering. Bit-identity requires that the components ticked on a given
// cycle run in exactly the order the cycle-stepped kernel would have run
// them. The kernel models this as dispatch classes drained in ascending
// class order; within a class the due set is handed to the dispatcher
// sorted by registration id, and the dispatcher applies any
// cycle-dependent permutation itself (the SoC rotates its L3-slice
// order). Same-cycle wakes may only target classes that have not yet
// drained this cycle — the SoC's dataflow (epoch → network → memory
// controllers → slices → tiles, with every backward edge carrying at
// least one cycle of modeled latency) guarantees this; the kernel counts
// any violation in LateWakes rather than diverging silently, and a wake
// landing on an already-drained class is deferred to the next cycle —
// exactly when the per-class drain would first have seen it.
//
// Accounting. Components are fast-forwarded lazily: each tracks the
// cycle through which it has accounted (ticked or fast-forwarded), and
// is caught up immediately before it is next ticked. Periodic hooks are
// synchronization barriers for *reads* — every component is caught up
// before a hook fires, so epoch-boundary observations (saturation
// windows, governor probes, metrics) see exactly the state the
// cycle-stepped kernel would have produced. Hook *writes* that could
// create earlier work for a sleeping component (heartbeat deliveries,
// injected controller faults) are announced through DirtyEvent; only the
// marked components are re-keyed after the hooks run, replacing the old
// O(n log n) all-component rekey barrier with work proportional to what
// the hooks actually touched.

const (
	wheelBits = 10
	// wheelW is the timing-wheel horizon in cycles. Events scheduled
	// within wheelW of the clock go to a bucket; later ones overflow.
	wheelW    = 1 << wheelBits
	wheelMask = wheelW - 1
)

// eventComp location sentinels (eventComp.where); non-negative values
// are wheel bucket indices.
const (
	whereParked   = -1 // key == NoEvent: not queued anywhere
	whereOverflow = -2 // in its class's overflow ring
	whereDispatch = -3 // popped for this cycle's dispatch
)

// eventComp is one registered component's scheduling state.
type eventComp struct {
	s      Sleeper
	class  int
	key    uint64 // scheduled next-event cycle (NoEvent while parked)
	where  int32  // bucket index, or a where* sentinel
	pos    int32  // index within its bucket or overflow ring
	synced uint64 // cycles < synced are accounted (ticked or fast-forwarded)
	dirty  bool   // queued in dirtyList for the post-hook rekey
}

// classQ is one dispatch class's schedule: a timing wheel for the near
// future plus an unsorted overflow ring for events past the horizon.
type classQ struct {
	buckets  [wheelW][]int32 // bucket b holds ids keyed to the unique in-window cycle ≡ b (mod wheelW)
	bitmap   [wheelW / 64]uint64
	bucketed int // live ids across all buckets

	overflow []int32
	ovMin    uint64 // lower bound on the overflow minimum key (exact after migrate)

	registered int    // components registered under this class
	visited    uint64 // cumulative component dispatches
}

// events is the kernel's event-mode state.
type events struct {
	comps     []eventComp
	classes   []classQ
	due       []int // per-cycle scratch
	dirtyList []int // hook-marked components awaiting rekey
	dispatch  func(now uint64, class int, due []int)

	// curClass is the class currently being drained this cycle (-1
	// outside the drain loop): inserts at or before the current cycle
	// targeting an already-drained class defer to the next cycle.
	curClass int

	lateWakes uint64
}

// SetEventMode switches the kernel to event-driven scheduling with the
// given number of dispatch classes. dispatch receives each cycle's due
// components one class at a time, in ascending class order, sorted by
// registration id; it must tick every component it is handed (skipping
// one would silently drop its work). A nil dispatch ticks due components
// directly. Call before RegisterEvent; incompatible with Register.
func (k *Kernel) SetEventMode(classes int, dispatch func(now uint64, class int, due []int)) {
	if len(k.tickers) > 0 {
		panic("sim: SetEventMode after Register")
	}
	k.ev = &events{
		classes:  make([]classQ, classes),
		dispatch: dispatch,
		curClass: -1,
	}
	for c := range k.ev.classes {
		k.ev.classes[c].ovMin = NoEvent
	}
}

// EventDriven reports whether the kernel is in event mode.
func (k *Kernel) EventDriven() bool { return k.ev != nil }

// RegisterEvent adds a component under a dispatch class and returns its
// id (the Wake handle). Registration order within a class defines the
// canonical intra-class dispatch order.
func (k *Kernel) RegisterEvent(class int, s Sleeper) int {
	ev := k.ev
	if ev == nil {
		panic("sim: RegisterEvent before SetEventMode")
	}
	if class < 0 || class >= len(ev.classes) {
		panic("sim: RegisterEvent class out of range")
	}
	id := len(ev.comps)
	ev.comps = append(ev.comps, eventComp{s: s, class: class, key: NoEvent, where: whereParked, synced: k.now})
	ev.classes[class].registered++
	ev.pushClamped(id, s.NextEventAt(k.now), k.now)
	return id
}

// Wake tells the kernel a component may have work at cycle `at` —
// called at every cross-component push site, because a sleeping
// component is never re-polled. NextEventAt remains authoritative:
// waking an idle component early is a harmless no-op tick, and a
// component's own new work is re-read after every dispatch. Wakes are
// clamped to cycles the component has not yet accounted; a clamped wake
// at or before the current cycle is counted in LateWakes.
func (k *Kernel) Wake(id int, at uint64) {
	ev := k.ev
	if ev == nil {
		return
	}
	ec := &ev.comps[id]
	if at < ec.synced {
		if at <= k.now {
			ev.lateWakes++
		}
		at = ec.synced
	}
	if ec.where == whereDispatch || at >= ec.key {
		// Mid-dispatch (re-keyed from NextEventAt afterwards) or not an
		// improvement.
		return
	}
	ev.remove(id)
	ev.insert(id, at, k.now)
}

// DirtyEvent marks a component whose schedule-relevant state the
// currently running periodic hook mutates (heartbeat deliveries that
// refill issue tokens, injected controller freezes): it is re-keyed
// from NextEventAt when the hook barrier finishes, so a sleeping
// component learns about hook-created earlier work. Cheap and
// idempotent. Outside hooks, use Wake.
func (k *Kernel) DirtyEvent(id int) {
	ev := k.ev
	if ev == nil {
		return
	}
	ec := &ev.comps[id]
	if ec.dirty {
		return
	}
	ec.dirty = true
	ev.dirtyList = append(ev.dirtyList, id)
}

// LateWakes returns how many wakes targeted an already-dispatched cycle
// (a violation of the forward-only same-cycle dataflow contract; always
// zero for the SoC's component graph).
func (k *Kernel) LateWakes() uint64 {
	if k.ev == nil {
		return 0
	}
	return k.ev.lateWakes
}

// EventClassStats reports, for each dispatch class, how many components
// are registered under it and how many component dispatches it has run
// in total. visited[c] / (Now() × registered[c]) is the class's dispatch
// occupancy — the fraction of component-cycles the event kernel actually
// paid for; the cycle kernel's is 1.0 by construction. Nil outside event
// mode.
func (k *Kernel) EventClassStats() (registered []int, visited []uint64) {
	ev := k.ev
	if ev == nil {
		return nil, nil
	}
	registered = make([]int, len(ev.classes))
	visited = make([]uint64, len(ev.classes))
	for c := range ev.classes {
		registered[c] = ev.classes[c].registered
		visited[c] = ev.classes[c].visited
	}
	return registered, visited
}

// ResyncEvents re-derives every component's schedule and accounting
// horizon from its current state at the kernel clock. Call after a
// checkpoint restore has overlaid component state.
func (k *Kernel) ResyncEvents() {
	ev := k.ev
	if ev == nil {
		return
	}
	for id := range ev.comps {
		ev.comps[id].synced = k.now
	}
	k.rekeyAll(k.now)
}

// runEvents is the event-mode Run loop.
func (k *Kernel) runEvents(end uint64) {
	ev := k.ev
	// Re-derive every key on entry: callers may mutate component state
	// between Run calls (warmups, stat resets, test scaffolding) without
	// issuing wakes. O(components) once per Run, not per cycle.
	k.rekeyAll(k.now)
	for k.now < end {
		now := k.now
		ev.migrate(now)
		if k.hookDue(now) {
			// Hooks are synchronization barriers: every component is
			// caught up before a hook reads, and the components a hook
			// writes (DirtyEvent) are re-keyed from ground truth after,
			// so hook-driven state changes reschedule sleepers.
			k.syncAll(now)
			for i := range k.hooks {
				h := &k.hooks[i]
				if now >= h.phase && (now-h.phase)%h.period == 0 {
					h.fn(now)
				}
			}
			ev.flushDirty(now)
		}
		for c := range ev.classes {
			ev.curClass = c
			due := ev.popDue(c, now)
			if len(due) == 0 {
				continue
			}
			for _, id := range due {
				ev.catchUp(id, now)
			}
			if ev.dispatch != nil {
				ev.dispatch(now, c, due)
			} else {
				for _, id := range due {
					ev.comps[id].s.Tick(now)
				}
			}
			for _, id := range due {
				ec := &ev.comps[id]
				ec.synced = now + 1
				ev.pushClamped(id, ec.s.NextEventAt(now+1), now)
			}
		}
		ev.curClass = -1
		k.now++
		if k.now >= end {
			break
		}
		// Jump the clock to the earliest scheduled event or hook.
		t := end
		if m := ev.minKeyAll(k.now); m < t {
			t = m
		}
		if h := k.nextHookAt(k.now); h < t {
			t = h
		}
		if t > k.now {
			k.skipped += t - k.now
			k.now = t
		}
	}
	// Leave every component accounted through the end of the run, so
	// cycle-derived statistics (IPC, utilization windows) are exact.
	k.syncAll(end)
}

// hookDue reports whether any periodic hook fires at cycle now.
func (k *Kernel) hookDue(now uint64) bool {
	for i := range k.hooks {
		h := &k.hooks[i]
		if now >= h.phase && (now-h.phase)%h.period == 0 {
			return true
		}
	}
	return false
}

// syncAll fast-forwards every component's accounting through cycle `to`.
func (k *Kernel) syncAll(to uint64) {
	ev := k.ev
	for id := range ev.comps {
		ev.catchUp(id, to)
	}
}

// rekeyAll rebuilds every component's schedule from NextEventAt at cycle
// `from`. Run-entry and restore only; steady state uses dirty-set rekey.
func (k *Kernel) rekeyAll(from uint64) {
	ev := k.ev
	for c := range ev.classes {
		q := &ev.classes[c]
		for w, word := range q.bitmap {
			for word != 0 {
				b := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				q.buckets[b] = q.buckets[b][:0]
			}
			q.bitmap[w] = 0
		}
		q.bucketed = 0
		q.overflow = q.overflow[:0]
		q.ovMin = NoEvent
	}
	ev.curClass = -1
	ev.dirtyList = ev.dirtyList[:0]
	for id := range ev.comps {
		ec := &ev.comps[id]
		ec.dirty = false
		ec.where = whereParked
		ec.key = NoEvent
		ev.pushClamped(id, ec.s.NextEventAt(from), from)
	}
}

// flushDirty re-keys the components the hooks marked, at cycle now.
func (ev *events) flushDirty(now uint64) {
	for _, id := range ev.dirtyList {
		ec := &ev.comps[id]
		ec.dirty = false
		if ec.where == whereDispatch {
			continue // being dispatched; re-keyed afterwards anyway
		}
		ev.remove(id)
		ev.pushClamped(id, ec.s.NextEventAt(now), now)
	}
	ev.dirtyList = ev.dirtyList[:0]
}

// catchUp accounts component id for the unticked cycles before `to`.
func (ev *events) catchUp(id int, to uint64) {
	ec := &ev.comps[id]
	if ec.synced < to {
		ec.s.FastForward(ec.synced, to)
		ec.synced = to
	}
}

// pushClamped (re)schedules component id. Keys are clamped to the
// component's accounting horizon so a conservative NextEventAt can
// never schedule an already-accounted cycle.
func (ev *events) pushClamped(id int, at, now uint64) {
	ec := &ev.comps[id]
	if at < ec.synced {
		at = ec.synced
	}
	ev.insert(id, at, now)
}

// insert queues component id for cycle `at`. Keys at or before the
// current cycle go to the current cycle's bucket while the component's
// class has not drained yet, and to the next cycle otherwise — exactly
// when the per-class drain would first have seen the key.
func (ev *events) insert(id int, at, now uint64) {
	ec := &ev.comps[id]
	if at == NoEvent {
		ec.key = NoEvent
		ec.where = whereParked
		return
	}
	if at <= now {
		if ec.class <= ev.curClass {
			at = now + 1
		} else {
			at = now
		}
	}
	ec.key = at
	q := &ev.classes[ec.class]
	if at-now < wheelW {
		b := int32(at & wheelMask)
		ec.where = b
		ec.pos = int32(len(q.buckets[b]))
		q.buckets[b] = append(q.buckets[b], int32(id))
		q.bitmap[b>>6] |= 1 << uint(b&63)
		q.bucketed++
		return
	}
	ec.where = whereOverflow
	ec.pos = int32(len(q.overflow))
	q.overflow = append(q.overflow, int32(id))
	if at < q.ovMin {
		q.ovMin = at
	}
}

// remove unqueues component id from its bucket or overflow ring (no-op
// while parked), leaving it parked.
func (ev *events) remove(id int) {
	ec := &ev.comps[id]
	q := &ev.classes[ec.class]
	switch {
	case ec.where >= 0:
		b := ec.where
		lst := q.buckets[b]
		last := len(lst) - 1
		moved := lst[last]
		lst[ec.pos] = moved
		ev.comps[moved].pos = ec.pos
		q.buckets[b] = lst[:last]
		if last == 0 {
			q.bitmap[b>>6] &^= 1 << uint(b&63)
		}
		q.bucketed--
	case ec.where == whereOverflow:
		last := len(q.overflow) - 1
		moved := q.overflow[last]
		q.overflow[ec.pos] = moved
		ev.comps[moved].pos = ec.pos
		q.overflow = q.overflow[:last]
		if last == 0 {
			q.ovMin = NoEvent
		}
	}
	ec.where = whereParked
	ec.key = NoEvent
}

// migrate moves overflow events that have entered the wheel horizon into
// their buckets. Runs once per executed cycle; the ovMin bound makes it
// a two-word check when nothing is close.
func (ev *events) migrate(now uint64) {
	for c := range ev.classes {
		q := &ev.classes[c]
		if len(q.overflow) == 0 || q.ovMin >= now+wheelW {
			continue
		}
		newMin := uint64(NoEvent)
		kept := q.overflow[:0]
		for _, id := range q.overflow {
			ec := &ev.comps[id]
			if ec.key-now < wheelW {
				b := int32(ec.key & wheelMask)
				ec.where = b
				ec.pos = int32(len(q.buckets[b]))
				q.buckets[b] = append(q.buckets[b], id)
				q.bitmap[b>>6] |= 1 << uint(b&63)
				q.bucketed++
				continue
			}
			ec.pos = int32(len(kept))
			kept = append(kept, id)
			if ec.key < newMin {
				newMin = ec.key
			}
		}
		q.overflow = kept
		q.ovMin = newMin
	}
}

// popDue drains class c's bucket for cycle now, returning the due ids
// sorted by registration id (the canonical intra-class order). Every id
// in the bucket is keyed exactly to now: bucketed keys always lie in
// [now, now+wheelW) — the clock never jumps past a scheduled key — and
// within that window the bucket index determines the cycle uniquely.
func (ev *events) popDue(c int, now uint64) []int {
	q := &ev.classes[c]
	b := int32(now & wheelMask)
	lst := q.buckets[b]
	if len(lst) == 0 {
		return nil
	}
	due := ev.due[:0]
	for _, id := range lst {
		ev.comps[id].where = whereDispatch
		due = append(due, int(id))
	}
	q.buckets[b] = lst[:0]
	q.bitmap[b>>6] &^= 1 << uint(b&63)
	q.bucketed -= len(due)
	if len(due) > 1 {
		sort.Ints(due)
	}
	q.visited += uint64(len(due))
	ev.due = due[:0] // retain capacity; the returned slice stays valid this cycle
	return due
}

// minKeyAll returns the earliest scheduled key across all classes at or
// after now (NoEvent when everything is parked). Overflow rings
// contribute their lazy minimum — a lower bound, so the clock can only
// undershoot, never skip work; the landing cycle's migrate tightens it.
func (ev *events) minKeyAll(now uint64) uint64 {
	min := uint64(NoEvent)
	for c := range ev.classes {
		q := &ev.classes[c]
		if len(q.overflow) > 0 && q.ovMin < min {
			min = q.ovMin
		}
		if q.bucketed > 0 {
			if k := q.minBucketKey(now); k < min {
				min = k
			}
		}
	}
	return min
}

// minBucketKey scans the occupancy bitmap circularly from now's slot for
// the first non-empty bucket; since all bucketed keys lie in
// [now, now+wheelW), that bucket holds the class minimum.
func (q *classQ) minBucketKey(now uint64) uint64 {
	start := int(now & wheelMask)
	w := start >> 6
	word := q.bitmap[w] &^ (1<<uint(start&63) - 1)
	for i := 0; i <= len(q.bitmap); i++ {
		if word != 0 {
			b := w<<6 + bits.TrailingZeros64(word)
			d := b - start
			if d < 0 {
				d += wheelW
			}
			return now + uint64(d)
		}
		w++
		if w == len(q.bitmap) {
			w = 0
		}
		word = q.bitmap[w]
	}
	return NoEvent
}
