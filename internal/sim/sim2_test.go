package sim

import "testing"

func TestDelayQueueLen(t *testing.T) {
	var q DelayQueue[int]
	if q.Len() != 0 {
		t.Fatal("fresh queue non-empty")
	}
	q.Push(1, 5)
	q.Push(2, 3)
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	q.Pop(10)
	if q.Len() != 1 {
		t.Fatalf("Len after pop = %d", q.Len())
	}
}

func TestDelayQueueInterleavedPushPop(t *testing.T) {
	var q DelayQueue[int]
	next := 0
	popped := 0
	for now := uint64(0); now < 1000; now++ {
		if now%3 == 0 {
			q.Push(next, now+uint64(next%7))
			next++
		}
		for {
			_, ok := q.Pop(now)
			if !ok {
				break
			}
			popped++
		}
	}
	for {
		_, ok := q.Pop(1 << 40)
		if !ok {
			break
		}
		popped++
	}
	if popped != next {
		t.Fatalf("pushed %d, popped %d", next, popped)
	}
}

func TestKernelMultipleHooksSameCycle(t *testing.T) {
	var k Kernel
	var order []int
	k.Every(2, 0, func(uint64) { order = append(order, 1) })
	k.Every(2, 0, func(uint64) { order = append(order, 2) })
	k.Run(2)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("hook order %v, want registration order", order)
	}
}
