package policy_test

import (
	"strings"
	"testing"

	"pabst"
	"pabst/policy"
)

// buildColo builds a chaser service class against a write-stream
// background on the 32-core system.
func buildColo(t *testing.T) (*pabst.System, pabst.ClassID, pabst.ClassID) {
	t.Helper()
	cfg := pabst.Default32Config()
	cfg.PABST.EpochCycles = 2000
	cfg.BWWindow = 2000
	b := pabst.NewBuilder(cfg, pabst.ModePABST)
	svc := b.AddClass("service", 1, cfg.L3Ways/2)
	bg := b.AddClass("background", 1, cfg.L3Ways/2)
	for i := 0; i < 16; i++ {
		b.Attach(i, svc, pabst.Chaser("svc", pabst.TileRegion(i), 4, uint64(i)+1))
		b.Attach(16+i, bg, pabst.Stream("bg", pabst.TileRegion(16+i), 128, true))
	}
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys.Warmup(100_000)
	return sys, svc, bg
}

func TestLatencyTargetMeetsSLO(t *testing.T) {
	sys, svc, _ := buildColo(t)
	const target = 280
	ctl := &policy.LatencyTarget{Class: svc, TargetCycles: target}
	if _, err := policy.Drive(sys, 100_000, 10, ctl); err != nil {
		t.Fatal(err)
	}
	// Measure a final window under the converged weight.
	sys.ResetStats()
	sys.Run(100_000)
	snap := sys.Snapshot()
	if lat := snap.Class(svc).MissLatency; lat > target*1.15 {
		t.Fatalf("controller left latency at %.0f, target %d", lat, target)
	}
	if w := ctl.Weight(); w < 2 {
		t.Fatalf("controller converged to weight %d; co-located chaser needs more than parity", w)
	}
}

func TestLatencyTargetDoesNotOvershoot(t *testing.T) {
	// Without competition the SLO is met at weight 1; the controller
	// must not escalate.
	cfg := pabst.Scaled8Config()
	cfg.PABST.EpochCycles = 2000
	cfg.BWWindow = 2000
	b := pabst.NewBuilder(cfg, pabst.ModePABST)
	svc := b.AddClass("service", 1, cfg.L3Ways/2)
	b.AddClass("unused", 1, cfg.L3Ways/2)
	for i := 0; i < 4; i++ {
		b.Attach(i, svc, pabst.Chaser("svc", pabst.TileRegion(i), 4, uint64(i)+1))
	}
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys.Warmup(60_000)
	ctl := &policy.LatencyTarget{Class: svc, TargetCycles: 800}
	if _, err := policy.Drive(sys, 60_000, 6, ctl); err != nil {
		t.Fatal(err)
	}
	if ctl.Weight() != 1 {
		t.Fatalf("uncontended controller escalated to weight %d", ctl.Weight())
	}
}

func TestBandwidthFloorGuarantee(t *testing.T) {
	cfg := pabst.Default32Config()
	cfg.PABST.EpochCycles = 2000
	cfg.BWWindow = 2000
	b := pabst.NewBuilder(cfg, pabst.ModePABST)
	vm := b.AddClass("vm", 1, cfg.L3Ways/2)
	other := b.AddClass("other", 7, cfg.L3Ways/2) // starts with 7x the share
	for i := 0; i < 16; i++ {
		b.Attach(i, vm, pabst.Stream("vm", pabst.TileRegion(i), 128, false))
		b.Attach(16+i, other, pabst.Stream("other", pabst.TileRegion(16+i), 128, false))
	}
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys.Warmup(100_000)
	// At 1:7 the vm gets ~12.5% ~ 4 B/cyc; demand a 12 B/cyc floor.
	ctl := &policy.BandwidthFloor{Class: vm, FloorBytesPerCycle: 12}
	if _, err := policy.Drive(sys, 100_000, 10, ctl); err != nil {
		t.Fatal(err)
	}
	sys.ResetStats()
	sys.Run(100_000)
	if got := sys.Metrics().BytesPerCycle(vm); got < 11 {
		t.Fatalf("floor controller delivered %.1f B/cyc, floor 12", got)
	}
}

func TestDriveValidatesAndLogs(t *testing.T) {
	sys, svc, _ := buildColo(t)
	if _, err := policy.Drive(sys, 0, 1); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := policy.Drive(sys, 1000, 0); err == nil {
		t.Fatal("zero steps accepted")
	}
	log, err := policy.Drive(sys, 50_000, 2, &policy.LatencyTarget{Class: svc, TargetCycles: 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 2 || !strings.Contains(log[0], "latency-target") {
		t.Fatalf("log = %v", log)
	}
}

func TestControllerValidation(t *testing.T) {
	sys, svc, _ := buildColo(t)
	if _, err := (&policy.LatencyTarget{Class: svc}).Step(sys); err == nil {
		t.Fatal("zero target accepted")
	}
	if _, err := (&policy.BandwidthFloor{Class: svc}).Step(sys); err == nil {
		t.Fatal("zero floor accepted")
	}
}
