// Package policy provides software allocation controllers on top of the
// PABST hardware mechanism.
//
// The paper is explicit that PABST is mechanism, not policy: "PABST
// provides a hardware mechanism and leaves allocation policy up to
// software" (Section I), pointing at data-center resource managers as the
// intended drivers. This package supplies reference controllers of that
// kind: each observes a running system over a control interval and
// adjusts class weights through the same software-visible knob a manager
// like Heracles would use.
//
// Controllers are deterministic and side-effect free apart from
// SetWeight, so they compose: run several against one system as long as
// they own disjoint classes.
package policy

import (
	"fmt"

	"pabst"
)

// System is the view controllers have of a running machine. *pabst.System
// satisfies it. Controllers observe through Snapshot — one coherent view
// of every class's delivery state — and act through SetWeight.
type System interface {
	SetWeight(class pabst.ClassID, weight uint64) error
	Snapshot() pabst.Snapshot
	ResetStats()
	Run(cycles uint64)
}

// Controller adjusts allocation in response to one observation window.
type Controller interface {
	// Name identifies the controller in reports.
	Name() string
	// Step observes the window just measured and may reweight classes.
	// It returns a short human-readable action description.
	Step(sys System) (action string, err error)
}

// Drive runs the control loop: repeatedly run the system for interval
// cycles, then give every controller a Step. The returned log holds one
// line per controller per interval.
func Drive(sys System, interval uint64, steps int, controllers ...Controller) ([]string, error) {
	if interval == 0 || steps <= 0 {
		return nil, fmt.Errorf("policy: bad control loop (interval %d, steps %d)", interval, steps)
	}
	var log []string
	for i := 0; i < steps; i++ {
		sys.ResetStats()
		sys.Run(interval)
		for _, c := range controllers {
			action, err := c.Step(sys)
			if err != nil {
				return log, fmt.Errorf("policy: %s: %w", c.Name(), err)
			}
			log = append(log, fmt.Sprintf("step %d %s: %s", i, c.Name(), action))
		}
	}
	return log, nil
}

// clampWeight keeps w in [1, max].
func clampWeight(w, max uint64) uint64 {
	if w < 1 {
		return 1
	}
	if max > 0 && w > max {
		return max
	}
	return w
}
