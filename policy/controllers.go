package policy

import (
	"fmt"

	"pabst"
)

// LatencyTarget holds a latency-critical class's mean miss latency under
// a target by multiplicatively growing its weight while the SLO is
// violated and decaying it only when latency has comfortable slack (a
// hysteresis band prevents flapping). This is the controller shape the
// paper's Section II-C use case implies: "a latency-sensitive application
// may be given a grossly disproportionate share", but no more than
// needed.
type LatencyTarget struct {
	// Class is the controlled class.
	Class pabst.ClassID
	// TargetCycles is the SLO on mean end-to-end miss latency.
	TargetCycles float64
	// DecayBelow is the fraction of target under which the weight decays
	// (default 0.55 — the hysteresis band).
	DecayBelow float64
	// MaxWeight bounds escalation (default 64).
	MaxWeight uint64

	weight uint64
}

// Name implements Controller.
func (c *LatencyTarget) Name() string { return "latency-target" }

// Step implements Controller.
func (c *LatencyTarget) Step(sys System) (string, error) {
	if c.TargetCycles <= 0 {
		return "", fmt.Errorf("non-positive latency target")
	}
	if c.weight == 0 {
		c.weight = 1
	}
	if c.DecayBelow == 0 {
		c.DecayBelow = 0.55
	}
	if c.MaxWeight == 0 {
		c.MaxWeight = 64
	}
	snap := sys.Snapshot()
	cs := snap.Class(c.Class)
	if cs == nil {
		return "", fmt.Errorf("unknown class %d", c.Class)
	}
	lat := cs.MissLatency
	switch {
	case lat > c.TargetCycles && c.weight < c.MaxWeight:
		c.weight = clampWeight(c.weight*2, c.MaxWeight)
	case lat < c.DecayBelow*c.TargetCycles && c.weight > 1:
		c.weight = clampWeight(c.weight/2, c.MaxWeight)
	default:
		return fmt.Sprintf("hold weight=%d (lat %.0f / target %.0f)", c.weight, lat, c.TargetCycles), nil
	}
	if err := sys.SetWeight(c.Class, c.weight); err != nil {
		return "", err
	}
	return fmt.Sprintf("weight=%d (lat %.0f / target %.0f)", c.weight, lat, c.TargetCycles), nil
}

// Weight returns the controller's current weight decision.
func (c *LatencyTarget) Weight() uint64 { return c.weight }

// BandwidthFloor guarantees a class a minimum bandwidth by escalating its
// weight while measured bandwidth sits below the floor — the IaaS
// "pay-for-bandwidth" use case of Section II-A, implemented in software
// over the proportional-share knob.
type BandwidthFloor struct {
	// Class is the protected class.
	Class pabst.ClassID
	// FloorBytesPerCycle is the guaranteed minimum.
	FloorBytesPerCycle float64
	// Headroom is the overshoot fraction above which the weight decays
	// (default 1.5).
	Headroom float64
	// MaxWeight bounds escalation (default 64).
	MaxWeight uint64

	weight uint64
}

// Name implements Controller.
func (c *BandwidthFloor) Name() string { return "bandwidth-floor" }

// Step implements Controller.
func (c *BandwidthFloor) Step(sys System) (string, error) {
	if c.FloorBytesPerCycle <= 0 {
		return "", fmt.Errorf("non-positive bandwidth floor")
	}
	if c.weight == 0 {
		c.weight = 1
	}
	if c.Headroom == 0 {
		c.Headroom = 1.5
	}
	if c.MaxWeight == 0 {
		c.MaxWeight = 64
	}
	snap := sys.Snapshot()
	cs := snap.Class(c.Class)
	if cs == nil {
		return "", fmt.Errorf("unknown class %d", c.Class)
	}
	got := cs.BytesPerCycle
	switch {
	case got < c.FloorBytesPerCycle && c.weight < c.MaxWeight:
		c.weight = clampWeight(c.weight*2, c.MaxWeight)
	case got > c.Headroom*c.FloorBytesPerCycle && c.weight > 1:
		c.weight--
	default:
		return fmt.Sprintf("hold weight=%d (bw %.1f / floor %.1f)", c.weight, got, c.FloorBytesPerCycle), nil
	}
	if err := sys.SetWeight(c.Class, c.weight); err != nil {
		return "", err
	}
	return fmt.Sprintf("weight=%d (bw %.1f / floor %.1f)", c.weight, got, c.FloorBytesPerCycle), nil
}

// Weight returns the controller's current weight decision.
func (c *BandwidthFloor) Weight() uint64 { return c.weight }
