package pabst

import (
	"io"

	"pabst/internal/obs"
	"pabst/internal/soc"
)

// Snapshot is a coherent point-in-time view of a system's observable
// state; see System.Snapshot.
type Snapshot = soc.Snapshot

// ClassSnapshot, TileSnapshot, GovernorSnapshot, and MCSnapshot are the
// per-facet slices of a Snapshot.
type (
	ClassSnapshot    = soc.ClassSnapshot
	TileSnapshot     = soc.TileSnapshot
	GovernorSnapshot = soc.GovernorSnapshot
	MCSnapshot       = soc.MCSnapshot
)

// Observer owns the trace-event ring and fans events out to sinks.
// Build one with NewObserver and arm it via WithObserver; events are
// emitted at epoch boundaries on the simulator's sequential phase, so
// traces are bit-identical across worker counts and fast-forward
// settings. A nil Observer is valid and free.
type Observer = obs.Observer

// Event is one trace record; EventKind discriminates it.
type (
	Event     = obs.Event
	EventKind = obs.Kind
)

// Trace event kinds.
const (
	// KindEpoch is the per-epoch system summary (SAT, per-class bytes).
	KindEpoch = obs.KindEpoch
	// KindGovernor is one tile's regulator state (M, δM, period).
	KindGovernor = obs.KindGovernor
	// KindArbiter is one controller's EDF-arbiter state (queue depth,
	// deadline slack reference, priority inversions served).
	KindArbiter = obs.KindArbiter
	// KindDRAM is one controller's per-epoch service deltas.
	KindDRAM = obs.KindDRAM
	// KindFault summarizes fault injection and degraded-signal activity.
	KindFault = obs.KindFault
)

// ParseEventKind converts a wire name ("epoch", "governor", "arbiter",
// "dram", "fault") back to an EventKind.
func ParseEventKind(s string) (EventKind, bool) { return obs.ParseKind(s) }

// Sink consumes trace events; see NewJSONLSink, NewCSVSink, NewPromSink.
type Sink = obs.Sink

// NewObserver builds an observer retaining the last ringCap events
// (obs.DefaultRingCap if ringCap <= 0) and forwarding each to sinks.
func NewObserver(ringCap int, sinks ...Sink) *Observer { return obs.NewObserver(ringCap, sinks...) }

// NewJSONLSink streams events as deterministic JSON lines.
func NewJSONLSink(w io.Writer) Sink { return obs.NewJSONLSink(w) }

// NewCSVSink streams events as one flat CSV schema.
func NewCSVSink(w io.Writer) Sink { return obs.NewCSVSink(w) }

// PromSink folds events into a Prometheus-style text snapshot.
type PromSink = obs.PromSink

// NewPromSink returns an empty Prometheus-style snapshot accumulator.
func NewPromSink() *PromSink { return obs.NewPromSink() }

// NewFilterSink forwards to inner only the events keep accepts.
func NewFilterSink(inner Sink, keep func(*Event) bool) Sink { return obs.NewFilterSink(inner, keep) }

// MetricRegistry is a named set of gauge samplers over live simulator
// counters — the pull-style complement to trace events.
type MetricRegistry = obs.Registry

// Convergence summarizes a regulated series' dynamics: settling point,
// overshoot, and steady-state ripple/mean.
type Convergence = obs.Convergence

// AnalyzeConvergence measures how samples settle onto target: a sample
// is in-band when |sample − target| <= tol, and the series settles at
// the start of the first run of hold consecutive in-band samples. The
// (target 0.7, tol 0.1, hold 10) instance is the Figure 5 rule.
func AnalyzeConvergence(samples []float64, target, tol float64, hold int) Convergence {
	return obs.Analyze(samples, target, tol, hold)
}

// Observer returns the observer armed via WithObserver (nil when
// tracing is off).
func (s *System) Observer() *Observer { return s.inner.Observer() }

// MetricRegistry returns the system's gauge registry, built at
// construction over soc/dram/regulate/qos counters.
func (s *System) MetricRegistry() *MetricRegistry { return s.inner.MetricRegistry() }

// WriteMetrics renders the metric registry as Prometheus-style text,
// sorted by metric name.
func (s *System) WriteMetrics(w io.Writer) error { return s.inner.WriteMetrics(w) }
