// The bench harness regenerates every table and figure of the paper's
// evaluation at the quick scale, reporting the headline numbers as
// benchmark metrics:
//
//	go test -bench=. -benchmem
//
// The shapes to compare against the paper are catalogued in
// EXPERIMENTS.md; the full-scale runs live behind cmd/pabstsim.
package pabst_test

import (
	"testing"

	"pabst"
	"pabst/internal/exp"
)

func BenchmarkTable3Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := pabst.Default32Config()
		if err := cfg.Validate(); err != nil {
			b.Fatal(err)
		}
		_ = exp.Table3(cfg)
	}
}

func BenchmarkFig1SourceVsTarget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results, err := exp.Fig1(exp.Quick())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			b.ReportMetric(r.Error, r.Mix.String()+"/"+r.Mode.String()+"/err%")
		}
	}
}

func BenchmarkFig5ProportionalAllocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig5(exp.Quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SteadyShares[0], "share-hi")
		b.ReportMetric(r.SteadyShares[1], "share-lo")
		b.ReportMetric(float64(r.ConvergedAt), "converged-cycle")
	}
}

func BenchmarkFig6WorkConservation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig6(exp.Quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ConstShareActive, "const-share-active")
		b.ReportMetric(r.ConstBpcIdle/r.PeakBpc, "const-idle-frac-of-peak")
	}
}

func BenchmarkFig7Pabst(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results, err := exp.Fig7(exp.Quick())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Mode == pabst.ModePABST {
				b.ReportMetric(r.Error, r.Mix.String()+"/pabst/err%")
			}
		}
	}
}

func BenchmarkFig8ExcessDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig8(exp.Quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ShareHi, "share-ddr50")
		b.ReportMetric(r.ShareLo, "share-ddr25")
		b.ReportMetric(r.ShareL3, "share-l3res")
	}
}

func BenchmarkFig9Memcached(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig9(exp.Quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Colocated.Mean/r.Isolated.Mean, "colocated-mean-x")
		b.ReportMetric(r.PABST.Mean/r.Isolated.Mean, "pabst-mean-x")
		b.ReportMetric(float64(r.PABST.P99)/float64(r.Isolated.P99), "pabst-p99-x")
	}
}

// fig10Workloads keeps the bench grid to one bandwidth-limited and one
// latency-limited proxy; the CLI runs all eight.
var fig10Workloads = []string{"libquantum", "sphinx3"}

func BenchmarkFig10Isolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig10(exp.Quick(), fig10Workloads)
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range r.Workloads {
			b.ReportMetric(r.Cells[w][pabst.ModeNone].WeightedSlowdown, w+"/none-slowdown")
			b.ReportMetric(r.Cells[w][pabst.ModePABST].WeightedSlowdown, w+"/pabst-slowdown")
		}
	}
}

func BenchmarkFig11IaaS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := exp.Fig11(exp.Quick(), []string{"sphinx3"})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			b.ReportMetric(c.Improvement, c.Workload+"/improve%")
		}
	}
}

func BenchmarkFig12Efficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig10(exp.Quick(), []string{"libquantum"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Cells["libquantum"][pabst.ModeNone].Efficiency, "none-eff")
		b.ReportMetric(r.Cells["libquantum"][pabst.ModePABST].Efficiency, "pabst-eff")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// cycles per wall second for the 32-core system under full PABST load.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := pabst.Default32Config()
	cfg.PABST.EpochCycles = 2000
	bl := pabst.NewBuilder(cfg, pabst.ModePABST)
	hi := bl.AddClass("hi", 7, cfg.L3Ways/2)
	lo := bl.AddClass("lo", 3, cfg.L3Ways/2)
	for i := 0; i < 16; i++ {
		bl.Attach(i, hi, pabst.Stream("hi", pabst.TileRegion(i), 128, false))
		bl.Attach(16+i, lo, pabst.Stream("lo", pabst.TileRegion(16+i), 128, false))
	}
	sys, err := bl.Build()
	if err != nil {
		b.Fatal(err)
	}
	sys.Warmup(20_000)
	b.ResetTimer()
	const chunk = 10_000
	for i := 0; i < b.N; i++ {
		sys.Run(chunk)
	}
	b.ReportMetric(float64(chunk*b.N)/b.Elapsed().Seconds(), "sim-cycles/s")
}
