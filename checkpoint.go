package pabst

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"

	"pabst/internal/ckpt"
	"pabst/internal/config"
	"pabst/internal/soc"
	"pabst/internal/workload"
)

// CheckpointVersion is the binary checkpoint format version this build
// writes and reads.
const CheckpointVersion = ckpt.Version

// Typed checkpoint errors. Callers branch with errors.Is.
var (
	// ErrCkptVersion marks a checkpoint written by an incompatible
	// format version.
	ErrCkptVersion = ckpt.ErrVersion
	// ErrCkptCorrupt marks a truncated, bit-flipped, or otherwise
	// unparseable checkpoint.
	ErrCkptCorrupt = ckpt.ErrCorrupt
	// ErrCkptMismatch marks a structurally valid checkpoint that
	// describes a different machine than the one restoring it.
	ErrCkptMismatch = ckpt.ErrMismatch
	// ErrCkptUnsupported marks a system that cannot be checkpointed (or
	// a checkpoint that cannot be restored) because a component — e.g. a
	// closure-based generator — has no serializable description.
	ErrCkptUnsupported = ckpt.ErrUnsupported
)

// CheckpointInfo is a checkpoint's self-describing prefix, readable
// without building a system.
type CheckpointInfo struct {
	Version     uint32
	Cycle       uint64
	Fingerprint [32]byte
}

// ReadCheckpointInfo decodes just the header of a checkpoint stream —
// enough for tooling to display what a file contains and decide whether
// it matches the run being resumed.
func ReadCheckpointInfo(r io.Reader) (CheckpointInfo, error) {
	cr, err := ckpt.NewReader(r)
	if err != nil {
		return CheckpointInfo{}, err
	}
	h := cr.Header()
	return CheckpointInfo{Version: ckpt.Version, Cycle: h.Cycle, Fingerprint: h.Fingerprint}, nil
}

// fpDoc is the canonical structural description hashed into a
// checkpoint's fingerprint: the configuration with the wall-clock-only
// execution knobs zeroed (Workers and FastForward never change simulated
// state, so they must not change the fingerprint), the regulation mode,
// and the class and attachment layout. Weights are excluded — they are
// runtime state (SetWeight), carried in the payload instead.
type fpDoc struct {
	Config  config.System `json:"config"`
	Mode    string        `json:"mode"`
	Classes []fpClass     `json:"classes"`
	Tiles   []fpTile      `json:"tiles"`
}

type fpClass struct {
	Name   string `json:"name"`
	L3Ways int    `json:"l3_ways"`
}

type fpTile struct {
	Tile  int    `json:"tile"`
	Class int    `json:"class"`
	Gen   string `json:"gen"`
}

func normalizeConfig(cfg config.System) config.System {
	cfg.Workers = 0
	cfg.FastForward = false
	return cfg
}

func fingerprintOf(inner *soc.System) ([32]byte, error) {
	doc := fpDoc{Config: normalizeConfig(inner.Config()), Mode: inner.Mode().String()}
	for _, c := range inner.Registry().Classes() {
		doc.Classes = append(doc.Classes, fpClass{Name: c.Name, L3Ways: c.L3Ways})
	}
	for _, a := range inner.Attachments() {
		doc.Tiles = append(doc.Tiles, fpTile{Tile: a.Tile, Class: int(a.Class), Gen: a.Gen.Name()})
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		return [32]byte{}, err
	}
	return sha256.Sum256(raw), nil
}

// Fingerprint returns the sha256 of the system's structural description:
// configuration (minus the wall-clock-only Workers/FastForward knobs),
// mode, classes, and attachments. Two systems restore each other's
// checkpoints iff their fingerprints match.
func (s *System) Fingerprint() ([32]byte, error) { return fingerprintOf(s.inner) }

// ckptMeta rides in the checkpoint header and carries everything
// pabst.Restore needs to rebuild the machine without caller help:
// the (normalized) configuration, the mode, the classes with their
// creation parameters, and each attachment's generator build recipe.
// An attachment whose generator has no recipe (closures, recorders,
// replayed traces) leaves Spec.Kind empty; such checkpoints restore
// only through Builder.Restore, where the caller reconstructs the
// generators itself.
type ckptMeta struct {
	Config  config.System `json:"config"`
	Mode    string        `json:"mode"`
	Classes []metaClass   `json:"classes"`
	Attach  []metaAttach  `json:"attach"`
}

type metaClass struct {
	Name   string `json:"name"`
	Weight uint64 `json:"weight"`
	L3Ways int    `json:"l3_ways"`
}

type metaAttach struct {
	Tile  int                `json:"tile"`
	Class int                `json:"class"`
	Spec  workload.BuildSpec `json:"spec"`
}

// Checkpoint serializes the complete simulated machine to w: a
// self-describing header (format version, structural fingerprint,
// current cycle, rebuild metadata) followed by every component's state
// in canonical order and a CRC trailer. A restored system is
// bit-identical to the saved one: running both for the same number of
// cycles produces byte-equal metrics under any Workers/FastForward
// combination.
//
// The system must contain only checkpointable generators; a closure-
// based generator fails with ErrCkptUnsupported.
func (s *System) Checkpoint(w io.Writer) error {
	fp, err := fingerprintOf(s.inner)
	if err != nil {
		return err
	}
	meta := ckptMeta{Config: normalizeConfig(s.inner.Config()), Mode: s.inner.Mode().String()}
	for _, c := range s.reg.Classes() {
		meta.Classes = append(meta.Classes, metaClass{Name: c.Name, Weight: c.Weight, L3Ways: c.L3Ways})
	}
	for _, a := range s.inner.Attachments() {
		ma := metaAttach{Tile: a.Tile, Class: int(a.Class)}
		if d, ok := a.Gen.(workload.Describable); ok {
			ma.Spec = d.BuildSpec()
		}
		meta.Attach = append(meta.Attach, ma)
	}
	rawMeta, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	cw := ckpt.NewWriter(w, ckpt.Header{Fingerprint: fp, Cycle: s.Now(), Meta: rawMeta})
	s.inner.SaveState(cw)
	return cw.Close()
}

// Restore rebuilds a system entirely from a checkpoint written by
// System.Checkpoint: the header metadata supplies the configuration,
// mode, classes, and workload recipes; the payload supplies the state.
// Options apply after the metadata (use WithWorkers/WithFastForward to
// restore onto different execution settings — both are wall-clock-only
// and preserve bit-identical outputs). Installing a different fault
// plan than the checkpoint's fails with ErrCkptMismatch.
//
// Checkpoints containing generators without build recipes (closures,
// recorders, trace replayers) fail with ErrCkptUnsupported; restore
// those through Builder.Restore on a builder that reconstructs the same
// machine.
func Restore(r io.Reader, opts ...Option) (*System, error) {
	cr, err := ckpt.NewReader(r)
	if err != nil {
		return nil, err
	}
	var meta ckptMeta
	if err := json.Unmarshal(cr.Header().Meta, &meta); err != nil {
		return nil, fmt.Errorf("%w: checkpoint metadata: %v", ErrCkptCorrupt, err)
	}
	mode, err := ParseMode(meta.Mode)
	if err != nil {
		return nil, fmt.Errorf("%w: checkpoint mode: %v", ErrCkptCorrupt, err)
	}
	b := NewBuilder(meta.Config, mode)
	for _, c := range meta.Classes {
		b.AddClass(c.Name, c.Weight, c.L3Ways)
	}
	for _, a := range meta.Attach {
		if a.Spec.Kind == "" {
			return nil, fmt.Errorf("%w: tile %d generator has no build recipe; use Builder.Restore", ErrCkptUnsupported, a.Tile)
		}
		gen, err := workload.FromBuildSpec(a.Spec)
		if err != nil {
			return nil, err
		}
		b.Attach(a.Tile, ClassID(a.Class), gen)
	}
	for _, o := range opts {
		o(b)
	}
	return b.restoreFrom(cr)
}

// Restore builds the system this builder describes and overlays the
// checkpointed state from r onto it. The builder must describe the same
// machine that wrote the checkpoint — same configuration (Workers and
// FastForward excepted), mode, classes, and attachments — which is
// verified against the header fingerprint before any state is touched;
// a disagreement fails with ErrCkptMismatch.
//
// Unlike the package-level Restore, this path handles generators that
// cannot describe their own construction (closures, recorders, trace
// replayers): the builder reconstructs them, the checkpoint overlays
// their cursors.
func (b *Builder) Restore(r io.Reader) (*System, error) {
	cr, err := ckpt.NewReader(r)
	if err != nil {
		return nil, err
	}
	return b.restoreFrom(cr)
}

func (b *Builder) restoreFrom(cr *ckpt.Reader) (*System, error) {
	sys, err := b.Build()
	if err != nil {
		return nil, err
	}
	if err := sys.restoreReader(cr); err != nil {
		sys.Close()
		return nil, err
	}
	return sys, nil
}

// RestoreFrom overlays a checkpoint onto this system in place. The
// checkpoint must have been written by a structurally identical system,
// which is verified against the header fingerprint before any state is
// touched. The system may already have run — every stateful component
// is overlaid wholesale — but a failure mid-restore (a corrupt payload)
// leaves it partially overlaid and unusable.
func (s *System) RestoreFrom(r io.Reader) error {
	cr, err := ckpt.NewReader(r)
	if err != nil {
		return err
	}
	return s.restoreReader(cr)
}

func (s *System) restoreReader(cr *ckpt.Reader) error {
	fp, err := fingerprintOf(s.inner)
	if err != nil {
		return err
	}
	if h := cr.Header(); fp != h.Fingerprint {
		return fmt.Errorf("%w: checkpoint fingerprint %x…, this system is %x…",
			ErrCkptMismatch, h.Fingerprint[:8], fp[:8])
	}
	s.inner.RestoreState(cr)
	return cr.Close()
}

// RunContext advances the simulation by up to cycles, checking ctx for
// cancellation at epoch boundaries. It returns how many cycles actually
// ran, with ctx.Err() when it stopped early. The clock advances exactly
// as Run would; cancellation only decides where it stops.
func (s *System) RunContext(ctx context.Context, cycles uint64) (uint64, error) {
	return s.inner.RunContext(ctx, cycles)
}

// WarmupContext runs up to cycles under ctx and resets measurement
// state only if the warmup completed; a canceled warmup leaves the
// counters inspectable.
func (s *System) WarmupContext(ctx context.Context, cycles uint64) (uint64, error) {
	return s.inner.WarmupContext(ctx, cycles)
}
