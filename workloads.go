package pabst

import (
	"fmt"
	"sort"
	"strings"

	"pabst/internal/workload"
)

// WorkloadInfo describes one entry of the workload registry.
type WorkloadInfo struct {
	Name string // registry key for WorkloadByName
	Args string // human-readable numeric-argument signature
	Desc string
}

// Workloads lists every workload constructible by name: the synthetic
// microbenchmark kinds plus the eight SPEC proxies. Commands use this
// registry instead of each maintaining its own constructor switch.
func Workloads() []WorkloadInfo {
	out := []WorkloadInfo{
		{"stream", "[strideBytes [write01]]", "bandwidth-limited sequential streamer (default stride 128, read-only)"},
		{"chaser", "[chains]", "latency-limited pointer chaser (default 4 independent chains)"},
		{"periodic", "[ddrCycles cacheCycles]", "alternates memory-resident and cache-resident phases"},
		{"bursty", "[burstOps idleGap]", "clustered traffic: read bursts separated by compute gaps"},
		{"memcached", "", "transaction-serving proxy (chase + copy + think)"},
	}
	var specs []string
	for _, p := range workload.SpecSuite() {
		specs = append(specs, p.Name)
	}
	sort.Strings(specs)
	for _, name := range specs {
		out = append(out, WorkloadInfo{name, "", "SPEC CPU 2006 proxy"})
	}
	return out
}

// WorkloadByName builds a registered workload on region r. The seed
// feeds any randomized generator (ignored by deterministic kinds); args
// are kind-specific, optional, and documented per entry by Workloads.
func WorkloadByName(name string, r Region, seed uint64, args ...uint64) (Generator, error) {
	arg := func(i int, def uint64) uint64 {
		if i < len(args) {
			return args[i]
		}
		return def
	}
	switch name {
	case "stream":
		return Stream(name, r, arg(0, 128), arg(1, 0) != 0), nil
	case "chaser":
		return Chaser(name, r, int(arg(0, 4)), seed), nil
	case "periodic":
		// Carve a cache-resident window off the front of the region; the
		// remainder is the memory-resident phase's footprint.
		cachedSize := uint64(256 << 10)
		if cachedSize > r.Size/2 {
			cachedSize = r.Size / 2
		}
		cached := Region{Base: r.Base, Size: cachedSize}
		ddr := Region{Base: r.Base + Addr(cachedSize), Size: r.Size - cachedSize}
		return Periodic(name, ddr, cached, arg(0, 100_000), arg(1, 100_000)), nil
	case "bursty":
		return BurstyTraffic(name, r, int(arg(0, 64)), int(arg(1, 20_000)), seed), nil
	case "memcached":
		return workload.NewMemcached(workload.DefaultMemcachedParams(), r, seed)
	default:
		if p, ok := workload.SpecByName(name); ok {
			return workload.NewSpec(p, r, seed)
		}
		var known []string
		for _, w := range Workloads() {
			known = append(known, w.Name)
		}
		return nil, fmt.Errorf("pabst: unknown workload %q (known: %s)", name, strings.Join(known, ", "))
	}
}
