// Command pabsttrace streams the simulator's epoch-scoped trace events —
// governor registers (M, δM, period), arbiter state (queue depth,
// deadline slack, priority inversions), DRAM service deltas, and the
// per-class epoch summary — through the observability sinks. It is the
// raw material behind Figure 4/5-style plots, and because events are
// emitted on the sequential phase the output is bit-identical for any
// -workers setting.
//
// Usage:
//
//	pabsttrace [-epochs n] [-epoch cycles] [-whi w] [-wlo w]
//	           [-policy src+tgt] [-format jsonl|csv]
//	           [-events epoch,governor,...] [-tile n] > trace
//
// -policy swaps in a QoS policy pair from the plugin registry (see
// pabstsim -list-policies); probe-backed mechanisms emit governor events
// with their own register semantics.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pabst"
	"pabst/internal/cliflags"
)

func main() {
	epochs := flag.Int("epochs", 200, "epochs to trace")
	epoch := flag.Uint64("epoch", 20000, "epoch length in cycles")
	wHi := flag.Uint64("whi", 7, "high class weight")
	wLo := flag.Uint64("wlo", 3, "low class weight")
	format := flag.String("format", "csv", "output format: jsonl or csv")
	events := flag.String("events", "", "comma-separated event kinds to keep (default all): epoch,governor,arbiter,dram,fault,kernel")
	tile := flag.Int("tile", -1, "restrict governor events to one tile (-1 = all)")
	common := cliflags.Register(flag.CommandLine)
	flag.Parse()

	opts, err := common.Options()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pabsttrace: %v\n", err)
		os.Exit(2)
	}

	var sink pabst.Sink
	switch *format {
	case "jsonl":
		sink = pabst.NewJSONLSink(os.Stdout)
	case "csv":
		sink = pabst.NewCSVSink(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "pabsttrace: unknown -format %q (want jsonl or csv)\n", *format)
		os.Exit(2)
	}
	if keep, err := buildFilter(*events, *tile); err != nil {
		fmt.Fprintf(os.Stderr, "pabsttrace: %v\n", err)
		os.Exit(2)
	} else if keep != nil {
		sink = pabst.NewFilterSink(sink, keep)
	}
	observer := pabst.NewObserver(0, sink)

	cfg := pabst.Default32Config()
	cfg.PABST.EpochCycles = *epoch
	cfg.BWWindow = *epoch

	b := pabst.NewBuilder(cfg, pabst.ModePABST,
		append(opts, pabst.WithObserver(observer))...)
	hi := b.AddClass("hi", *wHi, cfg.L3Ways/2)
	lo := b.AddClass("lo", *wLo, cfg.L3Ways/2)
	for i := 0; i < 16; i++ {
		b.Attach(i, hi, pabst.Stream("hi", pabst.TileRegion(i), 128, false))
		b.Attach(16+i, lo, pabst.Stream("lo", pabst.TileRegion(16+i), 128, false))
	}
	sys, err := b.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pabsttrace: %v\n", err)
		os.Exit(1)
	}
	defer sys.Close()

	sys.Run(uint64(*epochs) * *epoch)
	if err := observer.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "pabsttrace: %v\n", err)
		os.Exit(1)
	}
}

// buildFilter composes the -events and -tile restrictions into one sink
// predicate; nil means keep everything.
func buildFilter(events string, tile int) (func(*pabst.Event) bool, error) {
	var kinds map[pabst.EventKind]bool
	if events != "" {
		kinds = make(map[pabst.EventKind]bool)
		for _, name := range strings.Split(events, ",") {
			k, ok := pabst.ParseEventKind(strings.TrimSpace(name))
			if !ok {
				return nil, fmt.Errorf("unknown event kind %q", name)
			}
			kinds[k] = true
		}
	}
	if kinds == nil && tile < 0 {
		return nil, nil
	}
	return func(e *pabst.Event) bool {
		if kinds != nil && !kinds[e.Kind] {
			return false
		}
		if tile >= 0 && e.Kind == pabst.KindGovernor && e.Unit != tile {
			return false
		}
		return true
	}, nil
}
