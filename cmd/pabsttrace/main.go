// Command pabsttrace dumps the governor's convergence dynamics as CSV:
// one row per epoch with the wired-OR SAT signal, a representative tile's
// multiplier M, its step δM, the installed pacing period, and per-class
// bandwidth over the epoch — the raw material behind Figure 4/5-style
// plots.
//
// Usage:
//
//	pabsttrace [-epochs n] [-epoch cycles] [-whi w] [-wlo w] > trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"pabst"
)

func main() {
	epochs := flag.Int("epochs", 200, "epochs to trace")
	epoch := flag.Uint64("epoch", 20000, "epoch length in cycles")
	wHi := flag.Uint64("whi", 7, "high class weight")
	wLo := flag.Uint64("wlo", 3, "low class weight")
	flag.Parse()

	cfg := pabst.Default32Config()
	cfg.PABST.EpochCycles = *epoch
	cfg.BWWindow = *epoch

	b := pabst.NewBuilder(cfg, pabst.ModePABST)
	hi := b.AddClass("hi", *wHi, cfg.L3Ways/2)
	lo := b.AddClass("lo", *wLo, cfg.L3Ways/2)
	for i := 0; i < 16; i++ {
		b.Attach(i, hi, pabst.Stream("hi", pabst.TileRegion(i), 128, false))
		b.Attach(16+i, lo, pabst.Stream("lo", pabst.TileRegion(16+i), 128, false))
	}
	sys, err := b.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pabsttrace: %v\n", err)
		os.Exit(1)
	}

	fmt.Println("epoch,cycle,sat,M,dM,period_hi,bpc_hi,bpc_lo,share_hi")
	var prev pabst.Metrics
	for e := 0; e < *epochs; e++ {
		sys.Run(*epoch)
		m := sys.Metrics()
		bHi := float64(m.BytesByClass[hi]-prev.BytesByClass[hi]) / float64(*epoch)
		bLo := float64(m.BytesByClass[lo]-prev.BytesByClass[lo]) / float64(*epoch)
		prev = m
		share := 0.0
		if bHi+bLo > 0 {
			share = bHi / (bHi + bLo)
		}
		gm, gdm, gper, _ := sys.GovernorState(0)
		sat := 0
		if sys.SaturatedLastEpoch() {
			sat = 1
		}
		fmt.Printf("%d,%d,%d,%d,%d,%d,%.3f,%.3f,%.3f\n",
			e, sys.Now(), sat, gm, gdm, gper, bHi, bLo, share)
	}
}
