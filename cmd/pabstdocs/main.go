// Command pabstdocs is the documentation gate behind `make lint-docs`.
// It keeps the prose honest in four ways:
//
//   - every intra-repo markdown link must resolve to a file that exists
//     (external http/mailto links and pure #anchors are not checked);
//   - every Go package in the repo must carry a package comment, so
//     `go doc` has something to say about each subsystem;
//   - docs/POLICIES.md must be exactly the reference generated from the
//     live QoS policy registry — a mechanism registered in code but
//     missing from (or stale in) the docs fails the gate;
//   - every experiment in the unified registry must appear by name in
//     EXPERIMENTS.md, so `pabstsweep -list-experiments` never knows
//     about an experiment the book of results does not.
//
// Usage:
//
//	pabstdocs          # lint; non-zero exit on any finding
//	pabstdocs -write   # regenerate docs/POLICIES.md from the registry
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"pabst"
	"pabst/internal/exp"
)

const policiesDoc = "docs/POLICIES.md"

func main() {
	write := flag.Bool("write", false, "regenerate "+policiesDoc+" instead of linting")
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	if err := os.Chdir(*root); err != nil {
		fatalf("%v", err)
	}
	if *write {
		if err := os.WriteFile(policiesDoc, []byte(policyReference()), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("pabstdocs: wrote %s (%d policies)\n", policiesDoc, len(pabst.Policies()))
		return
	}

	var findings []string
	findings = append(findings, lintLinks()...)
	findings = append(findings, lintPackageDocs()...)
	findings = append(findings, lintPolicyReference()...)
	findings = append(findings, lintExperimentDocs()...)
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, "pabstdocs: "+f)
		}
		os.Exit(1)
	}
	fmt.Println("pabstdocs: ok")
}

// mdLink matches inline markdown links; image links share the shape and
// are checked the same way.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// lintLinks checks that every relative link in every tracked markdown
// file points at a path that exists.
func lintLinks() []string {
	var findings []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		// Skip the growth driver's metadata files: they quote external
		// repos and papers whose links intentionally point outside.
		switch path {
		case "SNIPPETS.md", "PAPERS.md", "PAPER.md", "ISSUE.md", "CHANGES.md":
			return nil
		}
		body, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				findings = append(findings, fmt.Sprintf("%s: broken link %q (%s does not exist)", path, m[1], resolved))
			}
		}
		return nil
	})
	if err != nil {
		findings = append(findings, err.Error())
	}
	return findings
}

// lintPackageDocs requires a package comment on every Go package: some
// non-test file in each package directory must carry a doc comment on
// its package clause.
func lintPackageDocs() []string {
	var findings []string
	dirs := map[string]bool{}
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return []string{err.Error()}
	}
	fset := token.NewFileSet()
	for dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			findings = append(findings, err.Error())
			continue
		}
		documented := false
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
				parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				findings = append(findings, err.Error())
				continue
			}
			if f.Doc != nil {
				documented = true
				break
			}
		}
		if !documented {
			findings = append(findings, fmt.Sprintf("%s: package has no package comment (add a doc.go or a comment on the package clause)", dir))
		}
	}
	return findings
}

// lintPolicyReference fails unless docs/POLICIES.md is byte-identical
// to the reference generated from the live registry.
func lintPolicyReference() []string {
	want := policyReference()
	got, err := os.ReadFile(policiesDoc)
	if err != nil {
		return []string{fmt.Sprintf("%s missing; run `go run ./cmd/pabstdocs -write` (%v)", policiesDoc, err)}
	}
	if string(got) != want {
		for _, p := range pabst.Policies() {
			if !strings.Contains(string(got), "### "+p.Name+" ("+p.Kind+")") {
				return []string{fmt.Sprintf("%s: registered %s policy %q undocumented; run `go run ./cmd/pabstdocs -write`", policiesDoc, p.Kind, p.Name)}
			}
		}
		return []string{fmt.Sprintf("%s is stale; run `go run ./cmd/pabstdocs -write`", policiesDoc)}
	}
	return nil
}

// lintExperimentDocs requires every experiment in the unified registry
// to be mentioned by name in EXPERIMENTS.md.
func lintExperimentDocs() []string {
	const doc = "EXPERIMENTS.md"
	body, err := os.ReadFile(doc)
	if err != nil {
		return []string{fmt.Sprintf("%s missing (%v)", doc, err)}
	}
	var findings []string
	for _, e := range exp.Experiments() {
		if !strings.Contains(string(body), e.Name()) {
			findings = append(findings, fmt.Sprintf(
				"%s: registered experiment %q undocumented (pabstsweep -list-experiments shows the registry)",
				doc, e.Name()))
		}
	}
	return findings
}

// policyReference renders the registry as markdown. Deterministic:
// pabst.Policies() returns sources then targets, each name-sorted.
func policyReference() string {
	var b strings.Builder
	b.WriteString("# QoS policy reference\n\n")
	b.WriteString("<!-- Generated by `go run ./cmd/pabstdocs -write` from the policy\n")
	b.WriteString("     registry; do not edit by hand — `make lint-docs` diffs it. -->\n\n")
	b.WriteString("Every QoS mechanism registered in the policy-plugin registry\n")
	b.WriteString("(`internal/qospolicy`). Select a pair with `-policy src+tgt` on\n")
	b.WriteString("`pabstsim`, `pabstsweep`, or `pabsttrace`, with the `\"policy\"` field of\n")
	b.WriteString("a sweep-service RunSpec, or programmatically with `pabst.WithPolicy`.\n")
	b.WriteString("Either half may be empty to keep that side's mode-derived default.\n")
	b.WriteString("To add a mechanism, see [POLICY_AUTHORING.md](POLICY_AUTHORING.md).\n")
	kind := ""
	for _, p := range pabst.Policies() {
		if p.Kind != kind {
			kind = p.Kind
			switch kind {
			case "source":
				b.WriteString("\n## Source policies — per-tile pacing\n")
			case "target":
				b.WriteString("\n## Target policies — memory-controller scheduling\n")
			default:
				fmt.Fprintf(&b, "\n## %s policies\n", kind)
			}
		}
		fmt.Fprintf(&b, "\n### %s (%s)\n\n%s.\n", p.Name, p.Kind, p.Desc)
		if p.Params != "" {
			fmt.Fprintf(&b, "\n- Parameters: %s\n", p.Params)
		}
		fmt.Fprintf(&b, "- Citation: %s\n", p.Cite)
	}
	return b.String()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pabstdocs: "+format+"\n", args...)
	os.Exit(1)
}
