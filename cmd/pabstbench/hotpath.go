package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"pabst/internal/dram"
	"pabst/internal/mem"
)

// The hotpath suite isolates the memory-controller datapath — the
// per-cycle pick/dispatch/issue work — and times the indexed scheduler
// against the frozen pre-index scan (dram.RefController) under identical
// deterministic traffic. The scan run allocates a packet per arrival and
// drops it after service, reproducing the historical allocation behavior;
// the indexed run recycles packets through a mem.Pool. Each run reports
// ns/cycle, allocs/cycle, and a fingerprint over its full service stream,
// so the recorded speedup is tied to a proof that both datapaths made the
// same decisions.

// HotRun is one timed controller configuration.
type HotRun struct {
	Name string `json:"name"`
	// Depth is the front-end read queue capacity (FrontReadQ).
	Depth          int     `json:"front_read_q"`
	Cycles         uint64  `json:"cycles"`
	NsPerCycle     float64 `json:"ns_per_cycle"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	// Fingerprint hashes every service decision (tag, completion time,
	// read/write) plus the final stats.
	Fingerprint  string `json:"fingerprint"`
	ReadsServed  uint64 `json:"reads_served"`
	WritesServed uint64 `json:"writes_served"`
	// Speedup is scan ns/cycle over indexed ns/cycle (1 on the scan row).
	Speedup float64 `json:"speedup"`
	// Identical reports whether the fingerprint matched the scan twin.
	Identical bool `json:"identical"`
}

// HotReport is the BENCH_hotpath.json document.
type HotReport struct {
	Host struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GoMaxProcs int    `json:"gomaxprocs"`
	} `json:"host"`
	Cycles uint64   `json:"cycles"`
	Warmup uint64   `json:"warmup"`
	Runs   []HotRun `json:"runs"`
}

func hotCfg(depth int) dram.Config {
	return dram.Config{
		Timing:         dram.DDR4(),
		Policy:         dram.OpenPage,
		Banks:          16,
		RowLines:       128,
		AddrShift:      2,
		FrontReadQ:     depth,
		FrontWriteQ:    32,
		WriteHighWater: 24,
		WriteLowWater:  8,
		PipelineDepth:  2,
	}
}

// fnv1a folds one service record into a running FNV-1a hash without
// allocating, so fingerprinting never perturbs the alloc measurement.
func fnv1a(h uint64, words ...uint64) uint64 {
	for _, w := range words {
		for i := 0; i < 8; i++ {
			h ^= w & 0xff
			h *= 1099511628211
			w >>= 8
		}
	}
	return h
}

// hotArbiter stamps the same deterministic pseudo-random deadlines as the
// differential test, coarsened to provoke EDF ties.
type hotArbiter struct{ rng *rand.Rand }

func (a *hotArbiter) OnAccept(pkt *mem.Packet, now uint64) {
	pkt.Deadline = now + uint64(a.rng.Intn(128))*16
}
func (a *hotArbiter) OnPick(pkt *mem.Packet, now uint64) {}

// hotDriver abstracts over the two controller generations so one drive
// loop produces the traffic for both. Admission is gated on queue
// population, which the differential test proves identical cycle-for-
// cycle, so independent same-seed RNG streams stay in lockstep.
type hotDriver interface {
	canRead() bool
	canWrite() bool
	read(line uint64, tag, now uint64)
	write(line uint64, tag, now uint64)
	tick(now uint64)
}

type indexedDriver struct {
	mc   *dram.Controller
	pool mem.Pool
}

func (d *indexedDriver) canRead() bool  { return d.mc.TryReserveRead() }
func (d *indexedDriver) canWrite() bool { return d.mc.TryReserveWrite() }
func (d *indexedDriver) read(line, tag, now uint64) {
	pkt := d.pool.Get()
	pkt.Addr = mem.Addr(line * mem.LineSize)
	pkt.Kind = mem.Read
	pkt.Class = mem.ClassID(tag % 4)
	pkt.Issue = tag
	d.mc.ArriveRead(pkt, now)
}
func (d *indexedDriver) write(line, tag, now uint64) {
	pkt := d.pool.Get()
	pkt.Addr = mem.Addr(line * mem.LineSize)
	pkt.Kind = mem.Writeback
	pkt.Class = mem.ClassID(tag % 4)
	pkt.Issue = tag
	d.mc.ArriveWrite(pkt, now)
}
func (d *indexedDriver) tick(now uint64) { d.mc.Tick(now) }

type scanDriver struct {
	ref   *dram.RefController
	depth int
}

func (d *scanDriver) canRead() bool  { return d.ref.QueuedReads() < d.depth }
func (d *scanDriver) canWrite() bool { return d.ref.QueuedWrites() < 32 }
func (d *scanDriver) read(line, tag, now uint64) {
	d.ref.ArriveRead(&mem.Packet{Addr: mem.Addr(line * mem.LineSize), Kind: mem.Read,
		Class: mem.ClassID(tag % 4), Issue: tag}, now)
}
func (d *scanDriver) write(line, tag, now uint64) {
	d.ref.ArriveWrite(&mem.Packet{Addr: mem.Addr(line * mem.LineSize), Kind: mem.Writeback,
		Class: mem.ClassID(tag % 4), Issue: tag}, now)
}
func (d *scanDriver) tick(now uint64) { d.ref.Tick(now) }

// fnvBasis is the FNV-1a 64-bit offset basis; each run's fingerprint
// starts here and folds in every service decision via the respond and
// release hooks.
const fnvBasis = 14695981039346656037

// hotRun drives one controller for warmup+cycles. The fingerprint hash
// accumulates in the caller's respond/release hooks over the full run
// including warmup, so the receipt spans every decision; time and
// allocations are measured over the steady-state window only.
func hotRun(d hotDriver, cfg dram.Config, warmup, cycles uint64) (nsPerCycle, allocsPerCycle float64) {
	rng := rand.New(rand.NewSource(int64(1000 + cfg.FrontReadQ)))
	var tag uint64
	drive := func(from, to uint64) {
		for now := from; now < to; now++ {
			burst := rng.Intn(4)
			for i := 0; i < burst; i++ {
				if !d.canRead() {
					break
				}
				line := uint64(rng.Intn(cfg.Banks*8)*cfg.RowLines) + uint64(rng.Intn(2))
				tag++
				d.read(line, tag, now)
			}
			if rng.Intn(5) == 0 && d.canWrite() {
				line := uint64(rng.Intn(cfg.Banks*8) * cfg.RowLines)
				tag++
				d.write(line, tag, now)
			}
			d.tick(now)
		}
	}
	drive(0, warmup)

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	drive(warmup, warmup+cycles)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	nsPerCycle = float64(wall.Nanoseconds()) / float64(cycles)
	allocsPerCycle = float64(after.Mallocs-before.Mallocs) / float64(cycles)
	return nsPerCycle, allocsPerCycle
}

// hotpathSuite writes BENCH_hotpath.json: scan vs indexed at three queue
// depths.
func hotpathSuite(warmup, cycles uint64, out string) {
	var rep HotReport
	rep.Host.GOOS = runtime.GOOS
	rep.Host.GOARCH = runtime.GOARCH
	rep.Host.NumCPU = runtime.NumCPU()
	rep.Host.GoMaxProcs = runtime.GOMAXPROCS(0)
	rep.Cycles = cycles
	rep.Warmup = warmup

	for _, depth := range []int{8, 32, 128} {
		cfg := hotCfg(depth)

		// Scan baseline: the frozen pre-index controller, one heap packet
		// per arrival, dropped after service (the historical datapath).
		scanHash := uint64(fnvBasis)
		var scanStats dram.Stats
		{
			h := &scanHash
			ref := dram.NewRefController(cfg, func(p *mem.Packet, doneAt uint64) {
				*h = fnv1a(*h, p.Issue, doneAt, 1)
			})
			ref.SetScheduler(dram.SchedEDF, &hotArbiter{rng: rand.New(rand.NewSource(int64(depth)))})
			ref.SetOnWrite(func(p *mem.Packet) { *h = fnv1a(*h, p.Issue, 0, 0) })
			ns, allocs := hotRun(&scanDriver{ref: ref, depth: depth}, cfg, warmup, cycles)
			scanHash = fnv1a(scanHash, ref.Stats.ReadsServed, ref.Stats.WritesServed,
				ref.Stats.RowHits, ref.Stats.PriorityInversions)
			scanStats = ref.Stats
			rep.Runs = append(rep.Runs, HotRun{
				Name: "scan (baseline)", Depth: depth, Cycles: cycles,
				NsPerCycle: ns, AllocsPerCycle: allocs,
				Fingerprint:  fmt.Sprintf("%016x", scanHash),
				ReadsServed:  ref.Stats.ReadsServed,
				WritesServed: ref.Stats.WritesServed,
				Speedup:      1, Identical: true,
			})
		}

		// Indexed: the production controller recycling packets through a
		// pool, same traffic, same decisions.
		{
			idxHash := uint64(fnvBasis)
			h := &idxHash
			d := &indexedDriver{}
			mc, err := dram.NewController(0, cfg, func(p *mem.Packet, doneAt uint64) {
				*h = fnv1a(*h, p.Issue, doneAt, 1)
				d.pool.Put(p)
			})
			check(err)
			d.mc = mc
			mc.SetScheduler(dram.SchedEDF, &hotArbiter{rng: rand.New(rand.NewSource(int64(depth)))})
			mc.SetReleaser(func(p *mem.Packet) {
				*h = fnv1a(*h, p.Issue, 0, 0)
				d.pool.Put(p)
			})
			d.pool.Grow(depth + 40)
			ns, allocs := hotRun(d, cfg, warmup, cycles)
			idxHash = fnv1a(idxHash, mc.Stats.ReadsServed, mc.Stats.WritesServed,
				mc.Stats.RowHits, mc.Stats.PriorityInversions)
			scanNs := rep.Runs[len(rep.Runs)-1].NsPerCycle
			rep.Runs = append(rep.Runs, HotRun{
				Name: "indexed", Depth: depth, Cycles: cycles,
				NsPerCycle: ns, AllocsPerCycle: allocs,
				Fingerprint:  fmt.Sprintf("%016x", idxHash),
				ReadsServed:  mc.Stats.ReadsServed,
				WritesServed: mc.Stats.WritesServed,
				Speedup: scanNs / ns,
				// The reference tracks only the scheduler-visible stats,
				// so compare those, not the full struct.
				Identical: idxHash == scanHash &&
					mc.Stats.ReadsServed == scanStats.ReadsServed &&
					mc.Stats.WritesServed == scanStats.WritesServed &&
					mc.Stats.RowHits == scanStats.RowHits &&
					mc.Stats.PriorityInversions == scanStats.PriorityInversions,
			})
		}
	}

	b, err := json.MarshalIndent(&rep, "", "  ")
	check(err)
	check(os.WriteFile(out, append(b, '\n'), 0o644))
	fmt.Printf("wrote %s\n", out)
	for _, r := range rep.Runs {
		same := "identical"
		if !r.Identical {
			same = "OUTPUT DIVERGED"
		}
		fmt.Printf("depth=%-4d %-18s %8.1f ns/cycle  %7.3f allocs/cycle  %5.2fx  %s\n",
			r.Depth, r.Name, r.NsPerCycle, r.AllocsPerCycle, r.Speedup, same)
	}
}
