package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"pabst"
)

// CkptRun is one reweighted sweep point of the warm-start comparison:
// the same measurement reached by a cold warmup versus by restoring the
// shared checkpoint, with the post-restore weight change applied to both.
type CkptRun struct {
	Weight      uint64  `json:"weight"`
	ColdSeconds float64 `json:"cold_seconds"`
	WarmSeconds float64 `json:"warm_seconds"`
	Speedup     float64 `json:"speedup"`
	// Identical reports whether the warm-started run's output matched the
	// cold run byte-for-byte — the checkpoint contract.
	Identical bool `json:"identical"`
}

// CkptReport is the BENCH_ckpt.json document. Self-contained like the
// other suite reports, so format changes elsewhere never invalidate
// recorded checkpoint baselines.
type CkptReport struct {
	Host struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GoMaxProcs int    `json:"gomaxprocs"`
	} `json:"host"`
	Warmup uint64 `json:"warmup"`
	Cycles uint64 `json:"cycles"`

	// The checkpoint itself: payload size and codec latency for the
	// 32-tile Figure 5 machine.
	CkptBytes      int     `json:"ckpt_bytes"`
	SaveSeconds    float64 `json:"save_seconds"`
	RestoreSeconds float64 `json:"restore_seconds"`

	// The headline: restoring versus re-simulating the warmup.
	ColdWarmupSeconds float64 `json:"cold_warmup_seconds"`
	WarmStartSpeedup  float64 `json:"warm_start_speedup"`
	Identical         bool    `json:"identical"`

	// Sweep restores the one shared checkpoint into several reweighted
	// measurement runs (the ForEachWarm pattern).
	Sweep []CkptRun `json:"sweep"`
}

// ckptSuite measures the checkpoint subsystem on the saturating 7:3
// stream machine: serialized size, save/restore latency, and the
// warm-start speedup of restoring a shared post-warmup checkpoint
// instead of re-simulating the warmup — with byte-identity of every
// warm-started run verified against its cold twin.
func ckptSuite(warmup, cycles uint64, out string) {
	var rep CkptReport
	rep.Host.GOOS = runtime.GOOS
	rep.Host.GOARCH = runtime.GOARCH
	rep.Host.NumCPU = runtime.NumCPU()
	rep.Host.GoMaxProcs = runtime.GOMAXPROCS(0)
	rep.Warmup = warmup
	rep.Cycles = cycles

	cfg := pabst.Default32Config()
	cfg.PABST.EpochCycles = 10_000

	// Cold reference: pay the warmup once, then checkpoint it.
	coldSys, classes := streamSystem(cfg)
	start := time.Now()
	coldSys.Warmup(warmup)
	rep.ColdWarmupSeconds = time.Since(start).Seconds()

	var ck bytes.Buffer
	start = time.Now()
	check(coldSys.Checkpoint(&ck))
	rep.SaveSeconds = time.Since(start).Seconds()
	rep.CkptBytes = ck.Len()

	start = time.Now()
	warmSys, err := pabst.Restore(bytes.NewReader(ck.Bytes()))
	check(err)
	rep.RestoreSeconds = time.Since(start).Seconds()
	if rep.RestoreSeconds > 0 {
		rep.WarmStartSpeedup = rep.ColdWarmupSeconds / rep.RestoreSeconds
	}

	// Both machines run the measurement; the outputs must be byte-equal.
	coldSys.Run(cycles)
	warmSys.Run(cycles)
	rep.Identical = fingerprint(coldSys, classes) == fingerprint(warmSys, classes)
	coldSys.Close()
	warmSys.Close()

	// Sweep: the amortization story. Each point changes the high class's
	// weight after warmup and measures; the warm arm restores the shared
	// checkpoint, the cold arm re-simulates the whole warmup.
	for _, w := range []uint64{5, 3, 1} {
		cs, ccls := streamSystem(cfg)
		start = time.Now()
		cs.Warmup(warmup)
		check(cs.SetWeight(ccls[0], w))
		cs.Run(cycles)
		coldT := time.Since(start).Seconds()
		coldFP := fingerprint(cs, ccls)
		cs.Close()

		start = time.Now()
		ws, err := pabst.Restore(bytes.NewReader(ck.Bytes()))
		check(err)
		check(ws.SetWeight(ccls[0], w))
		ws.Run(cycles)
		warmT := time.Since(start).Seconds()
		warmFP := fingerprint(ws, ccls)
		ws.Close()

		run := CkptRun{Weight: w, ColdSeconds: coldT, WarmSeconds: warmT, Identical: coldFP == warmFP}
		if warmT > 0 {
			run.Speedup = coldT / warmT
		}
		rep.Sweep = append(rep.Sweep, run)
	}

	b, err := json.MarshalIndent(&rep, "", "  ")
	check(err)
	check(os.WriteFile(out, append(b, '\n'), 0o644))
	fmt.Printf("wrote %s\n", out)
	fmt.Printf("checkpoint: %d bytes, save %.3fs, restore %.3fs (cold warmup %.2fs, %.1fx)\n",
		rep.CkptBytes, rep.SaveSeconds, rep.RestoreSeconds, rep.ColdWarmupSeconds, rep.WarmStartSpeedup)
	for _, r := range rep.Sweep {
		same := "identical"
		if !r.Identical {
			same = "OUTPUT DIVERGED"
		}
		fmt.Printf("%-22s %-26s %8.2fs  %5.2fx  %s\n", "ckpt-sweep",
			fmt.Sprintf("weight=%d warm-vs-cold", r.Weight), r.WarmSeconds, r.Speedup, same)
	}
	if !rep.Identical {
		fmt.Fprintln(os.Stderr, "pabstbench: warm-started run diverged from cold run")
		os.Exit(1)
	}
	for _, r := range rep.Sweep {
		if !r.Identical {
			fmt.Fprintln(os.Stderr, "pabstbench: warm-started sweep point diverged from cold run")
			os.Exit(1)
		}
	}
}
