// Command pabstbench measures the wall-clock effect of the execution
// knobs — the sharded tick (-workers), idle fast-forward, and sweep-level
// concurrency — and writes the results to BENCH_parallel.json.
//
// Every benchmarked configuration must also produce bit-identical
// simulation output to its group's baseline; the bench verifies this and
// records the verdict per run, so the JSON doubles as a determinism
// receipt for the host it ran on.
//
// With -suite obs it instead measures the observability layer's
// overhead contract — probes disabled (the baseline), the event ring
// alone, and the ring plus a JSONL sink — and writes BENCH_obs.json.
// The disabled-probe run must stay fingerprint-identical to an
// instrumented run: observation never changes a simulated outcome.
//
// With -suite ckpt it measures the checkpoint subsystem — serialized
// size, save/restore latency, and the warm-start speedup of restoring a
// shared post-warmup checkpoint across a reweighted sweep — and writes
// BENCH_ckpt.json. Every warm-started run must match its cold twin
// byte-for-byte.
//
// With -suite hotpath it isolates the memory-controller datapath and
// times the indexed scheduler against the frozen pre-index scan at
// several queue depths, recording ns/cycle, allocs/cycle, and a
// service-stream fingerprint per run in BENCH_hotpath.json.
//
// Usage:
//
//	pabstbench [-suite parallel|obs|ckpt|hotpath] [-cycles n] [-warmup n]
//	           [-out file.json] [-cpuprofile f] [-memprofile f]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"pabst"
	"pabst/internal/cliflags"
	"pabst/internal/exp"
)

// Run is one timed configuration.
type Run struct {
	Group       string  `json:"group"`
	Name        string  `json:"name"`
	Workers     int     `json:"workers,omitempty"`
	FastForward bool    `json:"fast_forward,omitempty"`
	Parallel    int     `json:"parallel,omitempty"`
	Cycles      uint64  `json:"cycles,omitempty"`
	Skipped     uint64  `json:"skipped_cycles,omitempty"`
	WallSeconds float64 `json:"wall_seconds"`
	// Speedup is wall-clock relative to the group's first (baseline) run.
	Speedup float64 `json:"speedup"`
	// Identical reports whether the run's simulation output matched the
	// baseline byte-for-byte.
	Identical bool `json:"identical"`
}

// Report is the BENCH_parallel.json document.
type Report struct {
	Host struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GoMaxProcs int    `json:"gomaxprocs"`
	} `json:"host"`
	Cycles uint64 `json:"cycles"`
	Warmup uint64 `json:"warmup"`
	Runs   []Run  `json:"runs"`
}

func main() {
	suite := flag.String("suite", "parallel", "benchmark suite: parallel, obs, ckpt, hotpath, or scale")
	cycles := flag.Uint64("cycles", 500_000, "measured cycles per kernel run")
	warmup := flag.Uint64("warmup", 200_000, "warmup cycles per kernel run")
	out := flag.String("out", "", "output path (default BENCH_<suite>.json)")
	quick := flag.Bool("quick", false, "scale suite: 64-tile meshes only, skip the full-suite speedup gates")
	common := cliflags.Register(flag.CommandLine)
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	defer profiles(*cpuprofile, *memprofile)()
	if _, _, err := common.Validate(); err != nil {
		check(err)
	}

	switch *suite {
	case "scale":
		if *out == "" {
			*out = "BENCH_scale.json"
		}
		scaleSuite(*cycles, true, *quick, *out)
		return
	case "obs":
		if *out == "" {
			*out = "BENCH_obs.json"
		}
		obsSuite(*warmup, *cycles, *out)
		return
	case "ckpt":
		if *out == "" {
			*out = "BENCH_ckpt.json"
		}
		ckptSuite(*warmup, *cycles, *out)
		return
	case "hotpath":
		if *out == "" {
			*out = "BENCH_hotpath.json"
		}
		hotpathSuite(*warmup, *cycles, *out)
		return
	case "parallel":
		if *out == "" {
			*out = "BENCH_parallel.json"
		}
	default:
		fmt.Fprintf(os.Stderr, "pabstbench: unknown -suite %q (want parallel, obs, ckpt, hotpath, or scale)\n", *suite)
		os.Exit(2)
	}

	var rep Report
	rep.Host.GOOS = runtime.GOOS
	rep.Host.GOARCH = runtime.GOARCH
	rep.Host.NumCPU = runtime.NumCPU()
	rep.Host.GoMaxProcs = runtime.GOMAXPROCS(0)
	rep.Cycles = *cycles
	rep.Warmup = *warmup

	// Group 1: the saturating 7:3 stream allocation (the Figure 5
	// scenario) under the sharded tick. Every tile is busy every cycle,
	// so fast-forward never fires; the worker pool is the only lever.
	kernelGroup(&rep, "kernel-streams-7:3", *warmup, *cycles, streamSystem,
		[]knobs{
			{name: "workers=1 (baseline)", workers: 1},
			{name: "workers=2", workers: 2},
			{name: "workers=4", workers: 4},
		})

	// Group 2: bursty traffic with long idle gaps. Here the idle
	// fast-forward is the lever — it skips the gaps outright, which no
	// amount of parallelism can.
	kernelGroup(&rep, "kernel-bursty-idle", *warmup, *cycles, burstySystem,
		[]knobs{
			{name: "spin (baseline)"},
			{name: "fast-forward", ff: true},
			{name: "fast-forward+workers=4", ff: true, workers: 4},
		})

	// Group 3: sweep-level concurrency over the six-cell Figure 7 grid at
	// quick scale — independent simulations on the bounded pool.
	sweepGroup(&rep)

	b, err := json.MarshalIndent(&rep, "", "  ")
	check(err)
	check(os.WriteFile(*out, append(b, '\n'), 0o644))
	fmt.Printf("wrote %s\n", *out)
	for _, r := range rep.Runs {
		same := "identical"
		if !r.Identical {
			same = "OUTPUT DIVERGED"
		}
		fmt.Printf("%-22s %-26s %8.2fs  %5.2fx  %s\n", r.Group, r.Name, r.WallSeconds, r.Speedup, same)
	}
}

type knobs struct {
	name    string
	workers int
	ff      bool
}

// kernelGroup times one scenario under each knob setting and fingerprints
// the output against the group baseline.
func kernelGroup(rep *Report, group string, warmup, cycles uint64,
	build func(cfg pabst.SystemConfig, opts ...pabst.Option) (*pabst.System, []pabst.ClassID), settings []knobs) {
	var baseFP string
	var baseWall float64
	for i, k := range settings {
		cfg := pabst.Default32Config()
		cfg.PABST.EpochCycles = 10_000
		sys, classes := build(cfg, pabst.WithWorkers(k.workers), pabst.WithFastForward(k.ff))
		start := time.Now()
		sys.Warmup(warmup)
		sys.Run(cycles)
		wall := time.Since(start).Seconds()
		fp := fingerprint(sys, classes)
		skipped := sys.SkippedCycles()
		sys.Close()
		if i == 0 {
			baseFP, baseWall = fp, wall
		}
		rep.Runs = append(rep.Runs, Run{
			Group:       group,
			Name:        k.name,
			Workers:     k.workers,
			FastForward: k.ff,
			Cycles:      warmup + cycles,
			Skipped:     skipped,
			WallSeconds: wall,
			Speedup:     baseWall / wall,
			Identical:   fp == baseFP,
		})
	}
}

// sweepGroup times the Figure 7 regulation grid with and without
// sweep-level concurrency, through the experiment registry. The cache
// stays nil: each parallel setting must pay for every simulation or the
// timing comparison is meaningless.
func sweepGroup(rep *Report) {
	e, err := exp.ExperimentByName("fig7")
	check(err)
	var baseJSON []byte
	var baseWall float64
	for i, parallel := range []int{1, 4} {
		scale := exp.Quick()
		scale.Parallel = parallel
		start := time.Now()
		tbl, _, _, err := exp.RunExperimentScale(context.Background(), e, scale, nil)
		check(err)
		wall := time.Since(start).Seconds()
		j, err := tbl.JSON()
		check(err)
		if i == 0 {
			baseJSON, baseWall = j, wall
		}
		rep.Runs = append(rep.Runs, Run{
			Group:       "sweep-fig7-grid",
			Name:        fmt.Sprintf("parallel=%d", parallel),
			Parallel:    parallel,
			WallSeconds: wall,
			Speedup:     baseWall / wall,
			Identical:   string(j) == string(baseJSON),
		})
	}
}

// streamSystem is the Figure 5 scenario: two 16-core stream classes at a
// 7:3 allocation, saturating the memory system.
func streamSystem(cfg pabst.SystemConfig, opts ...pabst.Option) (*pabst.System, []pabst.ClassID) {
	b := pabst.NewBuilder(cfg, pabst.ModePABST, opts...)
	hi := b.AddClass("hi", 7, cfg.L3Ways/2)
	lo := b.AddClass("lo", 3, cfg.L3Ways/2)
	for i := 0; i < 16; i++ {
		b.Attach(i, hi, pabst.Stream("hi", pabst.TileRegion(i), 128, false))
		b.Attach(16+i, lo, pabst.Stream("lo", pabst.TileRegion(16+i), 128, false))
	}
	sys, err := b.Build()
	check(err)
	return sys, []pabst.ClassID{hi, lo}
}

// burstySystem puts clustered traffic with long idle gaps on every tile.
func burstySystem(cfg pabst.SystemConfig, opts ...pabst.Option) (*pabst.System, []pabst.ClassID) {
	b := pabst.NewBuilder(cfg, pabst.ModePABST, opts...)
	c := b.AddClass("bursty", 1, cfg.L3Ways)
	for i := 0; i < cfg.NumTiles(); i++ {
		b.Attach(i, c, pabst.BurstyTraffic("b", pabst.TileRegion(i), 32, 8000, uint64(i)+1))
	}
	sys, err := b.Build()
	check(err)
	return sys, []pabst.ClassID{c}
}

// fingerprint renders the run's observable statistics for byte-for-byte
// comparison across knob settings.
func fingerprint(sys *pabst.System, classes []pabst.ClassID) string {
	snap := sys.Snapshot()
	s := fmt.Sprintf("metrics=%+v gov=%v", snap.Window, snap.GovernorMs())
	for _, c := range classes {
		cs := snap.Class(c)
		s += fmt.Sprintf(" c%d=%v/%v/%v", c, cs.IPC, cs.TileIPCs, cs.MissLatency)
	}
	return s
}

// ObsRun is one timed observability configuration.
type ObsRun struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
	// Overhead is wall-clock relative to the probes-off baseline
	// (0.02 = 2% slower). The acceptance budget for the disabled path
	// is <= 2%.
	Overhead float64 `json:"overhead"`
	// Events is the number of trace events emitted (0 when disabled).
	Events uint64 `json:"events"`
	// Identical reports whether the run's metric fingerprint matched the
	// probes-off baseline — observation must never perturb the simulation.
	Identical bool `json:"identical"`
}

// ObsReport is the BENCH_obs.json document. It is self-contained (own
// run type, own fields) so later changes to the parallel-suite report
// never invalidate recorded observability baselines.
type ObsReport struct {
	Host struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GoMaxProcs int    `json:"gomaxprocs"`
	} `json:"host"`
	Cycles uint64   `json:"cycles"`
	Warmup uint64   `json:"warmup"`
	Runs   []ObsRun `json:"runs"`
}

// obsSuite times the Figure 5 stream scenario with probes off, with the
// event ring alone, and with the ring feeding a JSONL sink, verifying
// that every variant produces the same metric fingerprint.
func obsSuite(warmup, cycles uint64, out string) {
	var rep ObsReport
	rep.Host.GOOS = runtime.GOOS
	rep.Host.GOARCH = runtime.GOARCH
	rep.Host.NumCPU = runtime.NumCPU()
	rep.Host.GoMaxProcs = runtime.GOMAXPROCS(0)
	rep.Cycles = cycles
	rep.Warmup = warmup

	variants := []struct {
		name string
		obs  func() *pabst.Observer
	}{
		{name: "probes-off (baseline)", obs: func() *pabst.Observer { return nil }},
		{name: "observer-ring", obs: func() *pabst.Observer { return pabst.NewObserver(0) }},
		{name: "observer-ring+jsonl", obs: func() *pabst.Observer {
			return pabst.NewObserver(0, pabst.NewJSONLSink(io.Discard))
		}},
	}

	var baseFP string
	var baseWall float64
	for i, v := range variants {
		cfg := pabst.Default32Config()
		cfg.PABST.EpochCycles = 10_000
		observer := v.obs()
		sys, classes := streamSystem(cfg, pabst.WithObserver(observer))
		start := time.Now()
		sys.Warmup(warmup)
		sys.Run(cycles)
		wall := time.Since(start).Seconds()
		fp := fingerprint(sys, classes)
		sys.Close()
		if i == 0 {
			baseFP, baseWall = fp, wall
		}
		rep.Runs = append(rep.Runs, ObsRun{
			Name:        v.name,
			WallSeconds: wall,
			Overhead:    wall/baseWall - 1,
			Events:      observer.Total(),
			Identical:   fp == baseFP,
		})
	}

	b, err := json.MarshalIndent(&rep, "", "  ")
	check(err)
	check(os.WriteFile(out, append(b, '\n'), 0o644))
	fmt.Printf("wrote %s\n", out)
	for _, r := range rep.Runs {
		same := "identical"
		if !r.Identical {
			same = "OUTPUT DIVERGED"
		}
		fmt.Printf("%-26s %8.2fs  %+6.2f%%  %8d events  %s\n",
			r.Name, r.WallSeconds, 100*r.Overhead, r.Events, same)
	}
}

// profiles starts a CPU profile (if requested) and returns the function
// that stops it and snapshots the heap (if requested). It runs via defer
// on the normal exit path; error exits through check() skip it, which is
// fine — a failed run's profile is not interesting.
func profiles(cpu, heap string) func() {
	var cf *os.File
	if cpu != "" {
		var err error
		cf, err = os.Create(cpu)
		check(err)
		check(pprof.StartCPUProfile(cf))
	}
	return func() {
		if cf != nil {
			pprof.StopCPUProfile()
			check(cf.Close())
		}
		if heap != "" {
			f, err := os.Create(heap)
			check(err)
			runtime.GC()
			check(pprof.WriteHeapProfile(f))
			check(f.Close())
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "pabstbench: %v\n", err)
		os.Exit(1)
	}
}
