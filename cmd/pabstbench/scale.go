package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"pabst"
)

// ScaleRun is one timed (scenario, mesh size, policy, kernel) cell of
// the scaling study.
type ScaleRun struct {
	Scenario string `json:"scenario"`
	Tiles    int    `json:"tiles"`
	// Policy is the source-policy axis ("pabst" on the default rows).
	Policy      string  `json:"policy,omitempty"`
	Kernel      string  `json:"kernel"`
	Workers     int     `json:"workers,omitempty"`
	Cycles      uint64  `json:"cycles"`
	Skipped     uint64  `json:"skipped_cycles,omitempty"`
	WallSeconds float64 `json:"wall_seconds"`
	NsPerCycle  float64 `json:"ns_per_cycle"`
	// Speedup is the event kernel's wall-clock gain over the cycle
	// kernel in the same cell (1.0 on the cycle rows).
	Speedup float64 `json:"speedup"`
	// Identical reports whether the run's statistics — including the
	// late-wake counter — matched the cell's cycle-kernel baseline
	// byte-for-byte.
	Identical bool `json:"identical"`
	// LateWakes counts wake-contract violations (must stay 0; it rides
	// in the compared fingerprint, so a nonzero value also fails
	// Identical against the trivially-zero cycle baseline).
	LateWakes uint64 `json:"late_wakes"`
	// TileOccupancy is the tile dispatch class's visited fraction of
	// component-cycles under the event kernel (the cycle kernel's is
	// 1.0 by construction; 0 when not applicable).
	TileOccupancy float64 `json:"tile_occupancy,omitempty"`
}

// ScaleReport is the BENCH_scale.json document: the event-kernel
// scaling study — cycle vs event over idle-heavy mesh sizes, over the
// source-policy zoo, and on an MSHR-saturated strict-model mesh where
// wake-on-completion is the only thing letting blocked cores sleep.
type ScaleReport struct {
	Host struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GoMaxProcs int    `json:"gomaxprocs"`
	} `json:"host"`
	Cycles uint64     `json:"cycles"`
	Quick  bool       `json:"quick,omitempty"`
	Runs   []ScaleRun `json:"runs"`
	// Speedup1024 is the event-over-cycle gain at the 1024-tile mesh
	// (the headline scaling number; full suite only), Regression64 the
	// event kernel's slowdown at the paper-scale 64-tile mesh (gate:
	// <= 1.10 in every mode).
	Speedup1024  float64 `json:"speedup_1024,omitempty"`
	Regression64 float64 `json:"regression_64"`
	// SpeedupMSHR256 is the event-over-cycle gain on the MSHR-saturated
	// strict-model mesh (gate: >= 1.5 in the full suite) and
	// PolicyBest/PolicyBestSpeedup the strongest non-PABST policy cell
	// (gate: >= 5x in the full suite).
	SpeedupMSHR256    float64 `json:"speedup_mshr_256,omitempty"`
	PolicyBest        string  `json:"policy_best,omitempty"`
	PolicyBestSpeedup float64 `json:"policy_best_speedup,omitempty"`
}

// scaleMesh builds the idle-heavy big-mesh scenario: every tile runs
// short clustered bursts separated by long idle gaps (the workload
// shape the event kernel exists for), under hierarchical SAT gossip.
// Gaps are staggered per tile so bursts desynchronize — aggregate
// demand stays far below the memory system's capacity, but at 1024
// tiles some tile is almost always active, which is precisely the
// regime where whole-machine fast-forward cannot engage and
// per-component skipping can. policy selects the source half by
// registry name ("" keeps the PABST governor).
func scaleMesh(cols, rows int, kernel, policy string, workers int) (*pabst.System, []pabst.ClassID) {
	cfg := pabst.MeshScaledConfig(cols, rows)
	cfg.PABST.EpochCycles = 10_000
	cfg.BWWindow = 10_000
	b := pabst.NewBuilder(cfg, pabst.ModePABST,
		pabst.WithKernel(kernel), pabst.WithWorkers(workers),
		pabst.WithPolicy(policy, ""))
	c := b.AddClass("bursty", 1, cfg.L3Ways)
	for i := 0; i < cfg.NumTiles(); i++ {
		gap := 15_000 + (i*977)%10_000
		b.Attach(i, c, pabst.BurstyTraffic("b", pabst.TileRegion(i), 16, gap, uint64(i)+1))
	}
	sys, err := b.Build()
	check(err)
	return sys, []pabst.ClassID{c}
}

// scaleMSHRMesh builds the MSHR-saturation scenario under the strict
// blocking model: every tile chases twice as many independent pointer
// chains as it has MSHR entries, so every core spends most cycles
// head-of-line blocked on a full miss table. The cycle kernel (and the
// previous event kernel, which returned "due now" for a blocked tile)
// polls every tile every cycle here; wake-on-completion lets the event
// kernel sleep each blocked tile until the response that frees an
// entry arrives.
func scaleMSHRMesh(cols, rows int, kernel string) (*pabst.System, []pabst.ClassID) {
	cfg := pabst.MeshScaledConfig(cols, rows)
	cfg.PABST.EpochCycles = 10_000
	cfg.BWWindow = 10_000
	cfg.StrictMSHRs = true
	b := pabst.NewBuilder(cfg, pabst.ModePABST, pabst.WithKernel(kernel))
	c := b.AddClass("chaser", 1, cfg.L3Ways)
	for i := 0; i < cfg.NumTiles(); i++ {
		b.Attach(i, c, pabst.Chaser("ch", pabst.TileRegion(i), 2*cfg.MaxMSHRs, uint64(i)+1))
	}
	sys, err := b.Build()
	check(err)
	return sys, []pabst.ClassID{c}
}

// scaleFingerprint extends the common statistics fingerprint with the
// late-wake counter: the cycle baseline's is trivially zero, so kernel
// identity forces every event run's to zero as well.
func scaleFingerprint(sys *pabst.System, classes []pabst.ClassID) (string, uint64, float64) {
	snap := sys.Snapshot()
	fp := fmt.Sprintf("%s lateWakes=%d", fingerprint(sys, classes), snap.LateWakes)
	occ := 0.0
	for _, ec := range snap.EventClasses {
		if ec.Class == "tile" && ec.Registered > 0 && snap.Cycle > 0 {
			occ = float64(ec.Visited) / (float64(snap.Cycle) * float64(ec.Registered))
		}
	}
	return fp, snap.LateWakes, occ
}

// timePair runs one scenario cell under both kernels and appends the
// two timed rows, returning the event kernel's speedup.
func (rep *ScaleReport) timePair(scenario, policy string, tiles int, cycles uint64,
	build func(kernel string) (*pabst.System, []pabst.ClassID)) float64 {
	var baseFP string
	var baseWall float64
	var evSpeedup float64
	for _, kernel := range []string{"cycle", "event"} {
		sys, classes := build(kernel)
		// Collect the previous cell's (possibly mesh-sized) heap before
		// timing, so one cell's garbage never bills the next.
		runtime.GC()
		start := time.Now()
		sys.Run(cycles)
		wall := time.Since(start).Seconds()
		fp, lateWakes, occ := scaleFingerprint(sys, classes)
		skipped := sys.SkippedCycles()
		sys.Close()
		if kernel == "cycle" {
			baseFP, baseWall = fp, wall
			occ = 0
		}
		rep.Runs = append(rep.Runs, ScaleRun{
			Scenario:      scenario,
			Tiles:         tiles,
			Policy:        policy,
			Kernel:        kernel,
			Cycles:        cycles,
			Skipped:       skipped,
			WallSeconds:   wall,
			NsPerCycle:    wall * 1e9 / float64(cycles),
			Speedup:       baseWall / wall,
			Identical:     fp == baseFP,
			LateWakes:     lateWakes,
			TileOccupancy: occ,
		})
		if kernel == "event" {
			evSpeedup = baseWall / wall
		}
	}
	return evSpeedup
}

// scaleSuite times cycle vs event dispatch across three axes — mesh
// size on the bursty scenario, source policy at a fixed mesh, and the
// MSHR-saturated strict-model mesh — verifies the kernels stay
// bit-identical (late wakes included) in every cell, and gates on the
// 64-tile no-regression bound plus, in the full suite, the
// MSHR-saturation and policy-axis speedup floors. quick restricts
// every scenario to the 64-tile mesh for use inside `make check`; the
// full sweep (256- and 1024-tile meshes and the stronger gates) runs
// from `make robust`.
func scaleSuite(cycles uint64, gate, quick bool, out string) {
	var rep ScaleReport
	rep.Host.GOOS = runtime.GOOS
	rep.Host.GOARCH = runtime.GOARCH
	rep.Host.NumCPU = runtime.NumCPU()
	rep.Host.GoMaxProcs = runtime.GOMAXPROCS(0)
	rep.Cycles = cycles
	rep.Quick = quick

	sizes := []struct{ cols, rows int }{{8, 8}, {16, 16}, {32, 32}}
	policyMesh := struct{ cols, rows int }{16, 16}
	mshrMesh := struct{ cols, rows int }{16, 16}
	if quick {
		sizes = sizes[:1]
		policyMesh = sizes[0]
		mshrMesh = sizes[0]
	}

	for _, sz := range sizes {
		sz := sz
		tiles := sz.cols * sz.rows
		speedup := rep.timePair("bursty", "pabst", tiles, cycles, func(kernel string) (*pabst.System, []pabst.ClassID) {
			return scaleMesh(sz.cols, sz.rows, kernel, "", 0)
		})
		switch tiles {
		case 1024:
			rep.Speedup1024 = speedup
		case 64:
			rep.Regression64 = 1 / speedup
		}
	}

	// The policy axis: the same bursty mesh under each non-PABST source
	// policy, pinning that the issue-schedule seam keeps every policy's
	// tiles asleep through their idle gaps.
	for _, policy := range []string{"static", "bankreg", "lmsar"} {
		policy := policy
		speedup := rep.timePair("policy", policy, policyMesh.cols*policyMesh.rows, cycles,
			func(kernel string) (*pabst.System, []pabst.ClassID) {
				return scaleMesh(policyMesh.cols, policyMesh.rows, kernel, policy, 0)
			})
		if speedup > rep.PolicyBestSpeedup {
			rep.PolicyBest, rep.PolicyBestSpeedup = policy, speedup
		}
	}

	rep.SpeedupMSHR256 = rep.timePair("mshr", "pabst", mshrMesh.cols*mshrMesh.rows, cycles,
		func(kernel string) (*pabst.System, []pabst.ClassID) {
			return scaleMSHRMesh(mshrMesh.cols, mshrMesh.rows, kernel)
		})

	b, err := json.MarshalIndent(&rep, "", "  ")
	check(err)
	check(os.WriteFile(out, append(b, '\n'), 0o644))
	fmt.Printf("wrote %s\n", out)
	for _, r := range rep.Runs {
		same := "identical"
		if !r.Identical {
			same = "OUTPUT DIVERGED"
		}
		fmt.Printf("%-7s tiles=%-5d %-8s %-6s %9.1f ns/cyc  %6.2fx  %s\n",
			r.Scenario, r.Tiles, r.Policy, r.Kernel, r.NsPerCycle, r.Speedup, same)
	}
	fmt.Printf("event kernel: %.2fx regression at 64 tiles, %.1fx on MSHR saturation, best policy %s at %.1fx\n",
		rep.Regression64, rep.SpeedupMSHR256, rep.PolicyBest, rep.PolicyBestSpeedup)
	if rep.Speedup1024 > 0 {
		fmt.Printf("event kernel: %.1fx at 1024 tiles\n", rep.Speedup1024)
	}

	if gate {
		for _, r := range rep.Runs {
			if !r.Identical {
				check(fmt.Errorf("scale suite: scenario=%s tiles=%d policy=%s kernel=%s diverged from the cycle baseline",
					r.Scenario, r.Tiles, r.Policy, r.Kernel))
			}
			if r.LateWakes != 0 {
				check(fmt.Errorf("scale suite: scenario=%s tiles=%d policy=%s kernel=%s recorded %d late wakes",
					r.Scenario, r.Tiles, r.Policy, r.Kernel, r.LateWakes))
			}
		}
		// No-regression bound at the paper-scale mesh: the event kernel
		// may not cost more than 10% over cycle dispatch at 64 tiles.
		if rep.Regression64 > 1.10 {
			check(fmt.Errorf("scale suite: event kernel regressed %.2fx at 64 tiles (gate 1.10x)", rep.Regression64))
		}
		if !quick {
			// Full-suite speedup floors: MSHR-blocked sleep must win on
			// the saturated 256-tile mesh, and at least one non-PABST
			// policy must reach 5x through its issue schedule.
			if rep.SpeedupMSHR256 < 1.5 {
				check(fmt.Errorf("scale suite: MSHR-saturation speedup %.2fx below the 1.5x gate", rep.SpeedupMSHR256))
			}
			if rep.PolicyBestSpeedup < 5 {
				check(fmt.Errorf("scale suite: best policy-axis speedup %.2fx (%s) below the 5x gate",
					rep.PolicyBestSpeedup, rep.PolicyBest))
			}
		}
	}
}
