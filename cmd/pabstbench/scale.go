package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"pabst"
)

// ScaleRun is one timed (mesh size, kernel) cell of the scaling study.
type ScaleRun struct {
	Tiles       int     `json:"tiles"`
	Kernel      string  `json:"kernel"`
	Workers     int     `json:"workers,omitempty"`
	Cycles      uint64  `json:"cycles"`
	Skipped     uint64  `json:"skipped_cycles,omitempty"`
	WallSeconds float64 `json:"wall_seconds"`
	NsPerCycle  float64 `json:"ns_per_cycle"`
	// Speedup is the event kernel's wall-clock gain over the cycle
	// kernel at the same mesh size (1.0 on the cycle rows).
	Speedup float64 `json:"speedup"`
	// Identical reports whether the run's statistics matched the
	// size's cycle-kernel baseline byte-for-byte.
	Identical bool `json:"identical"`
}

// ScaleReport is the BENCH_scale.json document: the event-kernel
// scaling study over idle-heavy meshes, cycle vs event at each size.
type ScaleReport struct {
	Host struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GoMaxProcs int    `json:"gomaxprocs"`
	} `json:"host"`
	Cycles uint64     `json:"cycles"`
	Runs   []ScaleRun `json:"runs"`
	// Speedup1024 is the event-over-cycle gain at the 1024-tile mesh
	// (the headline scaling number), Regression64 the event kernel's
	// slowdown at the paper-scale 64-tile mesh (gate: <= 1.10).
	Speedup1024  float64 `json:"speedup_1024"`
	Regression64 float64 `json:"regression_64"`
}

// scaleMesh builds the idle-heavy big-mesh scenario: every tile runs
// short clustered bursts separated by long idle gaps (the workload
// shape the event kernel exists for), under hierarchical SAT gossip.
// Gaps are staggered per tile so bursts desynchronize — aggregate
// demand stays far below the memory system's capacity, but at 1024
// tiles some tile is almost always active, which is precisely the
// regime where whole-machine fast-forward cannot engage and
// per-component skipping can.
func scaleMesh(cols, rows int, kernel string, workers int) (*pabst.System, []pabst.ClassID) {
	cfg := pabst.MeshScaledConfig(cols, rows)
	cfg.PABST.EpochCycles = 10_000
	cfg.BWWindow = 10_000
	b := pabst.NewBuilder(cfg, pabst.ModePABST,
		pabst.WithKernel(kernel), pabst.WithWorkers(workers))
	c := b.AddClass("bursty", 1, cfg.L3Ways)
	for i := 0; i < cfg.NumTiles(); i++ {
		gap := 15_000 + (i*977)%10_000
		b.Attach(i, c, pabst.BurstyTraffic("b", pabst.TileRegion(i), 16, gap, uint64(i)+1))
	}
	sys, err := b.Build()
	check(err)
	return sys, []pabst.ClassID{c}
}

// scaleSuite times cycle vs event dispatch on 64-, 256-, and 1024-tile
// meshes, verifies the kernels stay bit-identical at every size, and
// gates on the 64-tile no-regression bound. The measured run is short in
// cycles but large in components, which is exactly the regime the study
// is about.
func scaleSuite(cycles uint64, gate bool, out string) {
	var rep ScaleReport
	rep.Host.GOOS = runtime.GOOS
	rep.Host.GOARCH = runtime.GOARCH
	rep.Host.NumCPU = runtime.NumCPU()
	rep.Host.GoMaxProcs = runtime.GOMAXPROCS(0)
	rep.Cycles = cycles

	sizes := []struct{ cols, rows int }{{8, 8}, {16, 16}, {32, 32}}
	for _, sz := range sizes {
		tiles := sz.cols * sz.rows
		var baseFP string
		var baseWall float64
		for _, kernel := range []string{"cycle", "event"} {
			sys, classes := scaleMesh(sz.cols, sz.rows, kernel, 0)
			start := time.Now()
			sys.Run(cycles)
			wall := time.Since(start).Seconds()
			fp := fingerprint(sys, classes)
			skipped := sys.SkippedCycles()
			sys.Close()
			if kernel == "cycle" {
				baseFP, baseWall = fp, wall
			}
			rep.Runs = append(rep.Runs, ScaleRun{
				Tiles:       tiles,
				Kernel:      kernel,
				Cycles:      cycles,
				Skipped:     skipped,
				WallSeconds: wall,
				NsPerCycle:  wall * 1e9 / float64(cycles),
				Speedup:     baseWall / wall,
				Identical:   fp == baseFP,
			})
		}
	}

	for _, r := range rep.Runs {
		if r.Kernel != "event" {
			continue
		}
		switch r.Tiles {
		case 1024:
			rep.Speedup1024 = r.Speedup
		case 64:
			rep.Regression64 = 1 / r.Speedup
		}
	}

	b, err := json.MarshalIndent(&rep, "", "  ")
	check(err)
	check(os.WriteFile(out, append(b, '\n'), 0o644))
	fmt.Printf("wrote %s\n", out)
	for _, r := range rep.Runs {
		same := "identical"
		if !r.Identical {
			same = "OUTPUT DIVERGED"
		}
		fmt.Printf("tiles=%-5d %-6s %9.1f ns/cyc  %5.2fx  %s\n",
			r.Tiles, r.Kernel, r.NsPerCycle, r.Speedup, same)
	}
	fmt.Printf("event kernel: %.1fx at 1024 tiles, %.2fx overhead at 64 tiles\n",
		rep.Speedup1024, rep.Regression64)

	if gate {
		for _, r := range rep.Runs {
			if !r.Identical {
				check(fmt.Errorf("scale suite: tiles=%d kernel=%s diverged from the cycle baseline", r.Tiles, r.Kernel))
			}
		}
		// No-regression bound at the paper-scale mesh: the event kernel
		// may not cost more than 10% over cycle dispatch at 64 tiles.
		if rep.Regression64 > 1.10 {
			check(fmt.Errorf("scale suite: event kernel regressed %.2fx at 64 tiles (gate 1.10x)", rep.Regression64))
		}
	}
}
