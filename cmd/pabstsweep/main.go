// Command pabstsweep runs ablation sweeps over the PABST design
// parameters called out in DESIGN.md: epoch length, the rate scale factor
// F, pacer burst credit, arbiter slack, front-end queue depth, page
// policy, and gain inertia.
//
// Each sweep point is an exp.RunSpec — the same serializable unit of
// work the sweep service (cmd/pabstserve) executes — so a point run
// here and the equivalent job submitted over REST produce bit-identical
// machines and results. Every point runs the canonical 7:3
// two-stream-class allocation and reports how well the split converged
// and how much throughput the system sustained; the slack and bankq
// sweeps additionally run the chaser mix, where the arbiter matters
// most.
//
// Usage:
//
//	pabstsweep [-scale quick|full] [-param name] [-parallel n] [-workers n]
//	pabstsweep -policies [-out BENCH_policies.json] [-csv policies.csv]
//
// By default every sweep point runs one after another. -parallel n runs
// up to n points concurrently (each on its own isolated system) and
// -workers n shards each simulation's per-cycle work; both change only
// wall-clock time — every point's numbers are bit-identical at any
// setting.
//
// -policy src+tgt pins every parameter-sweep point to an explicit QoS
// policy pair from the plugin registry (either half may be empty to keep
// its mode default; see pabstsim -list-policies for the names).
// -policies switches to the cross-policy Pareto comparison instead: each
// registered mechanism pair runs the 7:3 stream mix across the
// utilization axis, and the tool reports each load's Pareto frontier on
// (share fidelity, hi-class p99 latency), optionally serializing the
// points with -out (JSON) and -csv.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"

	"pabst"
	"pabst/internal/exp"
)

// sweep is one named parameter axis; values feed exp.SetParam through a
// RunSpec, labels render the table rows.
type sweep struct {
	param  string
	labels []string
	values []uint64
	chaser bool // also run the chaser mix (latency-sensitive)
}

func sweeps() []sweep {
	num := func(param string, chaser bool, vals ...uint64) sweep {
		s := sweep{param: param, values: vals, chaser: chaser}
		for _, v := range vals {
			s.labels = append(s.labels, fmt.Sprintf("%d", v))
		}
		return s
	}
	return []sweep{
		num("epoch", false, 500, 1000, 2000, 5000, 10000, 20000),
		num("scalef", false, 16, 64, 256, 1024, 4096),
		num("burst", false, 1, 4, 16, 64),
		num("slack", true, 8, 32, 128, 512, 4096),
		num("queue", false, 8, 16, 32, 64),
		{param: "page", labels: []string{"closed", "open"}, values: []uint64{0, 1}},
		{param: "bankq", chaser: true,
			labels: []string{"pool", "bankq-1", "bankq-2", "bankq-4"},
			values: []uint64{0, 1, 2, 4}},
		num("inertia", false, 0, 1, 3, 6, 10),
	}
}

func main() {
	scaleName := flag.String("scale", "quick", "experiment scale: quick or full")
	param := flag.String("param", "", "sweep only this parameter")
	parallel := flag.Int("parallel", 0, "concurrent sweep points (0/1 = sequential)")
	workers := flag.Int("workers", 0, "worker goroutines per simulation (0/1 = sequential tick)")
	ff := flag.Bool("ff", false, "fast-forward provably idle cycles")
	ckptDir := flag.String("ckpt", "", "directory for post-warmup checkpoints; repeat runs restore instead of re-warming (bit-identical)")
	resume := flag.Bool("resume", false, "require a stored checkpoint for every point (a miss is an error); implies -ckpt")
	policy := flag.String("policy", "", "QoS policy pair `src+tgt` for every sweep point (empty halves keep mode defaults)")
	policies := flag.Bool("policies", false, "run the cross-policy Pareto comparison instead of parameter sweeps")
	outJSON := flag.String("out", "", "with -policies: write the sweep points as JSON to this `file`")
	outCSV := flag.String("csv", "", "with -policies: write the sweep points as CSV to this `file`")
	flag.Parse()

	if _, err := exp.ScaleByName(*scaleName); err != nil {
		fmt.Fprintf(os.Stderr, "pabstsweep: unknown scale %q\n", *scaleName)
		os.Exit(1)
	}
	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "pabstsweep: -resume needs -ckpt <dir>")
		os.Exit(1)
	}
	if _, _, err := pabst.ParsePolicyPair(*policy); err != nil {
		fmt.Fprintf(os.Stderr, "pabstsweep: %v\n", err)
		os.Exit(1)
	}
	ex := exp.Exec{Workers: *workers, FastForward: *ff, Ckpt: *ckptDir, Resume: *resume}

	if *policies {
		if err := runPolicies(*scaleName, *parallel, ex, *outJSON, *outCSV); err != nil {
			fmt.Fprintf(os.Stderr, "pabstsweep: %v\n", err)
			os.Exit(1)
		}
		return
	}

	for _, s := range sweeps() {
		if *param != "" && s.param != *param {
			continue
		}
		desc, _ := exp.ParamDesc(s.param)
		fmt.Printf("== sweep %s: %s ==\n", s.param, desc)
		fmt.Printf("%-10s %12s %12s %12s", "value", "share-hi", "err-70/30", "total-B/cyc")
		if s.chaser {
			fmt.Printf(" %14s", "chaser-share")
		}
		fmt.Println()
		// Points are independent simulations: measure them on the bounded
		// pool, then print in sweep order.
		type res struct {
			shHi, bpc, chaser float64
		}
		results := make([]res, len(s.values))
		err := exp.ForEach(*parallel, len(s.values), func(i int) error {
			params := map[string]uint64{s.param: s.values[i]}
			spec := exp.RunSpec{Bench: exp.BenchStreams, Scale: *scaleName, Params: params, Policy: *policy}
			r, err := spec.Run(context.Background(), ex, exp.RunIO{})
			if err != nil {
				return err
			}
			results[i] = res{shHi: r.ShareHi, bpc: r.TotalBPC}
			if s.chaser {
				cspec := exp.RunSpec{Bench: exp.BenchChaser, Scale: *scaleName, Params: params, Policy: *policy}
				cr, err := cspec.Run(context.Background(), ex, exp.RunIO{})
				if err != nil {
					return err
				}
				results[i].chaser = cr.ShareHi
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pabstsweep: %v\n", err)
			os.Exit(1)
		}
		for i, label := range s.labels {
			r := results[i]
			fmt.Printf("%-10s %12.3f %12.1f%% %12.1f", label, r.shHi, math.Abs(r.shHi-0.7)/0.7*100, r.bpc)
			if s.chaser {
				fmt.Printf(" %14.3f", r.chaser)
			}
			fmt.Println()
		}
		fmt.Println()
	}
}

// runPolicies executes the cross-policy Pareto comparison: every
// registered mechanism pair across the utilization axis, printed as a
// table and optionally serialized to JSON/CSV files.
func runPolicies(scaleName string, parallel int, ex exp.Exec, outJSON, outCSV string) error {
	sc, err := exp.ScaleByName(scaleName)
	if err != nil {
		return err
	}
	sc.Workers, sc.FastForward = ex.Workers, ex.FastForward
	sc.Ckpt, sc.Resume = ex.Ckpt, ex.Resume
	sc.Parallel = parallel

	table, points, err := exp.RunPolicyPareto(sc)
	if err != nil {
		return err
	}
	fmt.Print(table.String())

	if outJSON != "" {
		f, err := os.Create(outJSON)
		if err != nil {
			return err
		}
		if err := exp.WritePolicyJSON(f, sc.Name, points); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d points)\n", outJSON, len(points))
	}
	if outCSV != "" {
		f, err := os.Create(outCSV)
		if err != nil {
			return err
		}
		if err := exp.WritePolicyCSV(f, points); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d points)\n", outCSV, len(points))
	}
	return nil
}
