// Command pabstsweep runs ablation sweeps over the PABST design
// parameters called out in DESIGN.md: epoch length, the rate scale factor
// F, pacer burst credit, arbiter slack, front-end queue depth, page
// policy, and gain inertia.
//
// Each sweep point runs the canonical 7:3 two-stream-class allocation and
// reports how well the split converged and how much throughput the system
// sustained; the slack sweep additionally runs the chaser mix, where the
// arbiter matters most.
//
// Usage:
//
//	pabstsweep [-scale quick|full] [-param name] [-parallel n] [-workers n]
//
// By default every sweep point runs one after another. -parallel n runs
// up to n points concurrently (each on its own isolated system) and
// -workers n shards each simulation's per-cycle work; both change only
// wall-clock time — every point's numbers are bit-identical at any
// setting.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"pabst"
	"pabst/internal/dram"
	"pabst/internal/exp"
)

type point struct {
	label string
	mut   func(*pabst.SystemConfig)
}

type sweep struct {
	name   string
	desc   string
	points []point
	chaser bool // also run the chaser mix (latency-sensitive)
}

func sweeps() []sweep {
	u64 := func(set func(*pabst.SystemConfig, uint64), vals ...uint64) []point {
		var pts []point
		for _, v := range vals {
			v := v
			pts = append(pts, point{fmt.Sprintf("%d", v), func(c *pabst.SystemConfig) { set(c, v) }})
		}
		return pts
	}
	return []sweep{
		{
			name: "epoch", desc: "governor epoch length (cycles)",
			points: u64(func(c *pabst.SystemConfig, v uint64) { c.PABST.EpochCycles = v },
				500, 1000, 2000, 5000, 10000, 20000),
		},
		{
			name: "scalef", desc: "rate scale factor F (Eq. 3)",
			points: u64(func(c *pabst.SystemConfig, v uint64) { c.PABST.ScaleF = v },
				16, 64, 256, 1024, 4096),
		},
		{
			name: "burst", desc: "pacer burst credit (requests)",
			points: []point{
				{"1", func(c *pabst.SystemConfig) { c.PABST.BurstCredit = 1 }},
				{"4", func(c *pabst.SystemConfig) { c.PABST.BurstCredit = 4 }},
				{"16", func(c *pabst.SystemConfig) { c.PABST.BurstCredit = 16 }},
				{"64", func(c *pabst.SystemConfig) { c.PABST.BurstCredit = 64 }},
			},
		},
		{
			name: "slack", desc: "arbiter deadline slack (virtual ticks)", chaser: true,
			points: u64(func(c *pabst.SystemConfig, v uint64) { c.PABST.Slack = v },
				8, 32, 128, 512, 4096),
		},
		{
			name: "queue", desc: "MC front-end read queue depth",
			points: []point{
				{"8", func(c *pabst.SystemConfig) {
					c.DRAM.FrontReadQ = 8
					c.DRAM.FrontWriteQ = 8
					c.DRAM.WriteHighWater = 6
					c.DRAM.WriteLowWater = 2
				}},
				{"16", func(c *pabst.SystemConfig) {
					c.DRAM.FrontReadQ = 16
					c.DRAM.FrontWriteQ = 16
					c.DRAM.WriteHighWater = 12
					c.DRAM.WriteLowWater = 4
				}},
				{"32", func(c *pabst.SystemConfig) {}},
				{"64", func(c *pabst.SystemConfig) {
					c.DRAM.FrontReadQ = 64
					c.DRAM.FrontWriteQ = 64
					c.DRAM.WriteHighWater = 48
					c.DRAM.WriteLowWater = 16
				}},
			},
		},
		{
			name: "page", desc: "DRAM page policy",
			points: []point{
				{"closed", func(c *pabst.SystemConfig) {}},
				{"open", func(c *pabst.SystemConfig) { c.DRAM.Policy = dram.OpenPage }},
			},
		},
		{
			name: "bankq", desc: "MC organization: single-pool vs two-stage bank queues", chaser: true,
			points: []point{
				{"pool", func(c *pabst.SystemConfig) {}},
				{"bankq-1", func(c *pabst.SystemConfig) { c.DRAM.BankQueueDepth = 1 }},
				{"bankq-2", func(c *pabst.SystemConfig) { c.DRAM.BankQueueDepth = 2 }},
				{"bankq-4", func(c *pabst.SystemConfig) { c.DRAM.BankQueueDepth = 4 }},
			},
		},
		{
			name: "inertia", desc: "epochs of stability before the gain grows",
			points: []point{
				{"0", func(c *pabst.SystemConfig) { c.PABST.Inertia = 0 }},
				{"1", func(c *pabst.SystemConfig) { c.PABST.Inertia = 1 }},
				{"3", func(c *pabst.SystemConfig) { c.PABST.Inertia = 3 }},
				{"6", func(c *pabst.SystemConfig) { c.PABST.Inertia = 6 }},
				{"10", func(c *pabst.SystemConfig) { c.PABST.Inertia = 10 }},
			},
		},
	}
}

func main() {
	scaleName := flag.String("scale", "quick", "experiment scale: quick or full")
	param := flag.String("param", "", "sweep only this parameter")
	parallel := flag.Int("parallel", 0, "concurrent sweep points (0/1 = sequential)")
	workers := flag.Int("workers", 0, "worker goroutines per simulation (0/1 = sequential tick)")
	ff := flag.Bool("ff", false, "fast-forward provably idle cycles")
	ckptDir := flag.String("ckpt", "", "directory for post-warmup checkpoints; repeat runs restore instead of re-warming (bit-identical)")
	resume := flag.Bool("resume", false, "require a stored checkpoint for every point (a miss is an error); implies -ckpt")
	flag.Parse()

	var scale exp.Scale
	switch *scaleName {
	case "quick":
		scale = exp.Quick()
	case "full":
		scale = exp.Full()
	default:
		fmt.Fprintf(os.Stderr, "pabstsweep: unknown scale %q\n", *scaleName)
		os.Exit(1)
	}
	scale.Workers = *workers
	scale.FastForward = *ff
	scale.Ckpt = *ckptDir
	scale.Resume = *resume
	if scale.Resume && scale.Ckpt == "" {
		fmt.Fprintln(os.Stderr, "pabstsweep: -resume needs -ckpt <dir>")
		os.Exit(1)
	}

	for _, s := range sweeps() {
		if *param != "" && s.name != *param {
			continue
		}
		fmt.Printf("== sweep %s: %s ==\n", s.name, s.desc)
		fmt.Printf("%-10s %12s %12s %12s", "value", "share-hi", "err-70/30", "total-B/cyc")
		if s.chaser {
			fmt.Printf(" %14s", "chaser-share")
		}
		fmt.Println()
		// Points are independent simulations: measure them on the bounded
		// pool, then print in sweep order.
		type res struct {
			shHi, bpc, chaser float64
		}
		results := make([]res, len(s.points))
		err := exp.ForEach(*parallel, len(s.points), func(i int) error {
			shHi, bpc := runStreams(scale, s.points[i].mut)
			r := res{shHi: shHi, bpc: bpc}
			if s.chaser {
				r.chaser = runChaser(scale, s.points[i].mut)
			}
			results[i] = r
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pabstsweep: %v\n", err)
			os.Exit(1)
		}
		for i, p := range s.points {
			r := results[i]
			fmt.Printf("%-10s %12.3f %12.1f%% %12.1f", p.label, r.shHi, math.Abs(r.shHi-0.7)/0.7*100, r.bpc)
			if s.chaser {
				fmt.Printf(" %14.3f", r.chaser)
			}
			fmt.Println()
		}
		fmt.Println()
	}
}

// mustWorkload resolves a generator through the shared workload
// registry; the names used here are fixed, so failure is a programming
// error.
func mustWorkload(name string, r pabst.Region, seed uint64, args ...uint64) pabst.Generator {
	gen, err := pabst.WorkloadByName(name, r, seed, args...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pabstsweep: %v\n", err)
		os.Exit(1)
	}
	return gen
}

// runStreams is the canonical 7:3 allocation between two 16-core stream
// classes under full PABST.
func runStreams(scale exp.Scale, mut func(*pabst.SystemConfig)) (shareHi, totalBpc float64) {
	cfg := scale.Apply(pabst.Default32Config())
	mut(&cfg)
	b := pabst.NewBuilder(cfg, pabst.ModePABST, scale.Options()...)
	hi := b.AddClass("hi", 7, cfg.L3Ways/2)
	lo := b.AddClass("lo", 3, cfg.L3Ways/2)
	for i := 0; i < 16; i++ {
		b.Attach(i, hi, mustWorkload("stream", pabst.TileRegion(i), 0, 128))
		b.Attach(16+i, lo, mustWorkload("stream", pabst.TileRegion(16+i), 0, 128))
	}
	sys, err := exp.WarmedSystem(scale, b)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pabstsweep: %v\n", err)
		os.Exit(1)
	}
	defer sys.Close()
	sys.Run(scale.Measure)
	m := sys.Metrics()
	return m.ShareOf(hi), m.BytesPerCycle(hi) + m.BytesPerCycle(lo)
}

// runChaser gives the 3:1 high share to the latency-sensitive chaser.
func runChaser(scale exp.Scale, mut func(*pabst.SystemConfig)) float64 {
	cfg := scale.Apply(pabst.Default32Config())
	mut(&cfg)
	b := pabst.NewBuilder(cfg, pabst.ModePABST, scale.Options()...)
	hi := b.AddClass("chaser", 3, cfg.L3Ways/2)
	lo := b.AddClass("stream", 1, cfg.L3Ways/2)
	for i := 0; i < 16; i++ {
		b.Attach(i, hi, mustWorkload("chaser", pabst.TileRegion(i), uint64(i)+1, 8))
		b.Attach(16+i, lo, mustWorkload("stream", pabst.TileRegion(16+i), 0, 128, 1))
	}
	sys, err := exp.WarmedSystem(scale, b)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pabstsweep: %v\n", err)
		os.Exit(1)
	}
	defer sys.Close()
	sys.Run(scale.Measure)
	return sys.Metrics().ShareOf(hi)
}
