// Command pabstsweep runs ablation sweeps over the PABST design
// parameters called out in DESIGN.md: epoch length, the rate scale factor
// F, pacer burst credit, arbiter slack, front-end queue depth, page
// policy, and gain inertia.
//
// Each sweep point is an exp.RunSpec — the same serializable unit of
// work the sweep service (cmd/pabstserve) executes — so a point run
// here and the equivalent job submitted over REST produce bit-identical
// machines and results. Every point runs the canonical 7:3
// two-stream-class allocation and reports how well the split converged
// and how much throughput the system sustained; the slack and bankq
// sweeps additionally run the chaser mix, where the arbiter matters
// most.
//
// Usage:
//
//	pabstsweep [-scale quick|full] [-param name] [-parallel n] [-workers n]
//	pabstsweep -policies [-out BENCH_policies.json] [-csv policies.csv]
//	pabstsweep -screen [-out BENCH_screen.json]
//	pabstsweep -twin [-out BENCH_twin.json]
//	pabstsweep -experiment name
//	pabstsweep -list-experiments
//
// By default every sweep point runs one after another. -parallel n runs
// up to n points concurrently (each on its own isolated system) and
// -workers n shards each simulation's per-cycle work; both change only
// wall-clock time — every point's numbers are bit-identical at any
// setting.
//
// -policy src+tgt pins every parameter-sweep point to an explicit QoS
// policy pair from the plugin registry (either half may be empty to keep
// its mode default; see pabstsim -list-policies for the names).
// -policies switches to the cross-policy Pareto comparison instead: each
// registered mechanism pair runs the 7:3 stream mix across the
// utilization axis, and the tool reports each load's Pareto frontier on
// (share fidelity, hi-class p99 latency), optionally serializing the
// points with -out (JSON) and -csv.
//
// -screen runs the same comparison surrogate-first: the analytical twin
// (internal/twin) predicts every grid point, only points near the
// predicted frontier or with low model confidence go to the cycle
// simulator, and every skip is journaled with its justification. -twin
// validates that surrogate against the simulator across the fig1/fig5
// regulation points and the full Pareto grid, writing the per-metric
// divergence and exiting non-zero if it breaches the declared
// tolerances (the BENCH_twin.json gate `make bench-twin` enforces).
//
// -experiment runs any experiment from the unified registry (the same
// seam pabstsim's figures and the sweep service execute through);
// -list-experiments prints the registry.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"

	"pabst/internal/cliflags"
	"pabst/internal/exp"
)

// sweep is one named parameter axis; values feed exp.SetParam through a
// RunSpec, labels render the table rows.
type sweep struct {
	param  string
	labels []string
	values []uint64
	chaser bool // also run the chaser mix (latency-sensitive)
}

func sweeps() []sweep {
	num := func(param string, chaser bool, vals ...uint64) sweep {
		s := sweep{param: param, values: vals, chaser: chaser}
		for _, v := range vals {
			s.labels = append(s.labels, fmt.Sprintf("%d", v))
		}
		return s
	}
	return []sweep{
		num("epoch", false, 500, 1000, 2000, 5000, 10000, 20000),
		num("scalef", false, 16, 64, 256, 1024, 4096),
		num("burst", false, 1, 4, 16, 64),
		num("slack", true, 8, 32, 128, 512, 4096),
		num("queue", false, 8, 16, 32, 64),
		{param: "page", labels: []string{"closed", "open"}, values: []uint64{0, 1}},
		{param: "bankq", chaser: true,
			labels: []string{"pool", "bankq-1", "bankq-2", "bankq-4"},
			values: []uint64{0, 1, 2, 4}},
		num("inertia", false, 0, 1, 3, 6, 10),
	}
}

func main() {
	scaleName := flag.String("scale", "quick", "experiment scale: quick or full")
	param := flag.String("param", "", "sweep only this parameter")
	parallel := flag.Int("parallel", 0, "concurrent sweep points (0/1 = sequential)")
	common := cliflags.Register(flag.CommandLine)
	policies := flag.Bool("policies", false, "run the cross-policy Pareto comparison instead of parameter sweeps")
	screen := flag.Bool("screen", false, "surrogate-screened Pareto comparison: the analytical twin picks which grid points simulate")
	twin := flag.Bool("twin", false, "validate the analytical twin against the simulator; exit 1 if outside tolerance")
	experiment := flag.String("experiment", "", "run this registered experiment through the unified seam (see -list-experiments)")
	listExperiments := flag.Bool("list-experiments", false, "list the experiment registry and exit")
	outJSON := flag.String("out", "", "write the result JSON (-policies, -screen, -twin) to this `file`")
	outCSV := flag.String("csv", "", "with -policies: write the sweep points as CSV to this `file`")
	flag.Parse()

	if *listExperiments {
		for _, e := range exp.Experiments() {
			fmt.Printf("%-12s %s\n", e.Name(), e.Desc())
		}
		return
	}

	if _, err := exp.ScaleByName(*scaleName); err != nil {
		fmt.Fprintf(os.Stderr, "pabstsweep: unknown scale %q\n", *scaleName)
		os.Exit(1)
	}
	ex, err := common.Exec()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pabstsweep: %v\n", err)
		os.Exit(1)
	}
	sc, _ := exp.ScaleByName(*scaleName)
	if err := common.Apply(&sc); err != nil {
		fmt.Fprintf(os.Stderr, "pabstsweep: %v\n", err)
		os.Exit(1)
	}
	sc.Parallel = *parallel

	switch {
	case *twin:
		if err := runTwin(sc, *outJSON); err != nil {
			fmt.Fprintf(os.Stderr, "pabstsweep: %v\n", err)
			os.Exit(1)
		}
		return
	case *screen:
		if err := runScreen(sc, *outJSON); err != nil {
			fmt.Fprintf(os.Stderr, "pabstsweep: %v\n", err)
			os.Exit(1)
		}
		return
	case *experiment != "":
		e, err := exp.ExperimentByName(*experiment)
		if err == nil {
			var tbl *exp.Table
			tbl, _, _, err = exp.RunExperimentScale(context.Background(), e, sc, nil)
			if err == nil {
				fmt.Print(tbl.String())
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pabstsweep: %v\n", err)
			os.Exit(1)
		}
		return
	case *policies:
		if err := runPolicies(sc, *outJSON, *outCSV); err != nil {
			fmt.Fprintf(os.Stderr, "pabstsweep: %v\n", err)
			os.Exit(1)
		}
		return
	}

	for _, s := range sweeps() {
		if *param != "" && s.param != *param {
			continue
		}
		desc, _ := exp.ParamDesc(s.param)
		fmt.Printf("== sweep %s: %s ==\n", s.param, desc)
		fmt.Printf("%-10s %12s %12s %12s", "value", "share-hi", "err-70/30", "total-B/cyc")
		if s.chaser {
			fmt.Printf(" %14s", "chaser-share")
		}
		fmt.Println()
		// Points are independent simulations: measure them on the bounded
		// pool, then print in sweep order.
		type res struct {
			shHi, bpc, chaser float64
		}
		results := make([]res, len(s.values))
		err := exp.ForEach(*parallel, len(s.values), func(i int) error {
			params := map[string]uint64{s.param: s.values[i]}
			spec := exp.RunSpec{Bench: exp.BenchStreams, Scale: *scaleName, Params: params, Policy: common.Policy}
			r, err := spec.Run(context.Background(), ex, exp.RunIO{})
			if err != nil {
				return err
			}
			results[i] = res{shHi: r.ShareHi, bpc: r.TotalBPC}
			if s.chaser {
				cspec := exp.RunSpec{Bench: exp.BenchChaser, Scale: *scaleName, Params: params, Policy: common.Policy}
				cr, err := cspec.Run(context.Background(), ex, exp.RunIO{})
				if err != nil {
					return err
				}
				results[i].chaser = cr.ShareHi
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pabstsweep: %v\n", err)
			os.Exit(1)
		}
		for i, label := range s.labels {
			r := results[i]
			fmt.Printf("%-10s %12.3f %12.1f%% %12.1f", label, r.shHi, math.Abs(r.shHi-0.7)/0.7*100, r.bpc)
			if s.chaser {
				fmt.Printf(" %14.3f", r.chaser)
			}
			fmt.Println()
		}
		fmt.Println()
	}
}

// runPolicies executes the cross-policy Pareto comparison through the
// registry's "pareto" experiment: every registered mechanism pair
// across the utilization axis, printed as a table and optionally
// serialized to JSON/CSV files.
func runPolicies(sc exp.Scale, outJSON, outCSV string) error {
	e, err := exp.ExperimentByName("pareto")
	if err != nil {
		return err
	}
	table, specs, results, err := exp.RunExperimentScale(context.Background(), e, sc, nil)
	if err != nil {
		return err
	}
	points, err := exp.ParetoFromRuns(specs, results)
	if err != nil {
		return err
	}
	fmt.Print(table.String())

	if outJSON != "" {
		f, err := os.Create(outJSON)
		if err != nil {
			return err
		}
		if err := exp.WritePolicyJSON(f, sc.Name, points); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d points)\n", outJSON, len(points))
	}
	if outCSV != "" {
		f, err := os.Create(outCSV)
		if err != nil {
			return err
		}
		if err := exp.WritePolicyCSV(f, points); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d points)\n", outCSV, len(points))
	}
	return nil
}

// runTwin validates the analytical twin against the cycle simulator and
// gates the divergence: non-nil error (and a non-zero exit) when any
// mean metric error breaches its declared tolerance.
func runTwin(sc exp.Scale, outJSON string) error {
	b, err := exp.RunTwinBench(sc)
	if err != nil {
		return err
	}
	s := b.Summary
	fmt.Printf("twin validation @ %s: %d operating points\n", b.Scale, s.Points)
	fmt.Printf("  share |err|   mean %.4f  max %.4f  (gate: mean <= %.2f)\n",
		s.MeanShareAbsErr, s.MaxShareAbsErr, b.Tolerance.MeanShareAbsErr)
	fmt.Printf("  p99 rel err   mean %.3f   max %.3f   (gate: mean <= %.2f)\n",
		s.MeanP99RelErr, s.MaxP99RelErr, b.Tolerance.MeanP99RelErr)
	fmt.Printf("  util rel err  mean %.3f   max %.3f   (gate: mean <= %.2f)\n",
		s.MeanUtilRelErr, s.MaxUtilRelErr, b.Tolerance.MeanUtilRelErr)
	if outJSON != "" {
		f, err := os.Create(outJSON)
		if err != nil {
			return err
		}
		if err := exp.WriteTwinJSON(f, b); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outJSON)
	}
	if !b.Pass {
		return fmt.Errorf("twin divergence exceeds tolerance")
	}
	fmt.Println("twin within tolerance")
	return nil
}

// runScreen executes the surrogate-screened cross-policy sweep and
// journals every skipped point with the twin's justification.
func runScreen(sc exp.Scale, outJSON string) error {
	rep, table, err := exp.ScreenedPolicyPareto(sc)
	if err != nil {
		return err
	}
	fmt.Printf("surrogate screen @ %s: %d grid points, %d simulated, %d skipped\n",
		rep.Scale, rep.Total, rep.Simulated, rep.Skipped)
	for _, d := range rep.Decisions {
		verdict := "sim "
		if !d.Simulate {
			verdict = "skip"
		}
		fmt.Printf("  %s %-14s load=%-3d conf=%.2f  %s\n", verdict, d.Pair, d.Load, d.Confidence, d.Reason)
	}
	fmt.Print(table.String())
	if outJSON != "" {
		f, err := os.Create(outJSON)
		if err != nil {
			return err
		}
		if err := exp.WriteScreenJSON(f, rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outJSON)
	}
	return nil
}
