// Command pabstsim reproduces the tables and figures of the PABST paper's
// evaluation (HPCA 2017, Section IV). Each experiment prints the same
// rows or series the paper reports.
//
// Usage:
//
//	pabstsim [-scale quick|full] [-series] [-spec name,name,...]
//	         [-policy src+tgt] [-workers n] [-parallel n] [-ff]
//	         [-ckpt dir] [-resume] [-cpuprofile f] [-memprofile f]
//	         <experiment>...
//	pabstsim -list
//	pabstsim -list-policies
//
// -policy pins every system an experiment builds to an explicit QoS
// policy pair from the plugin registry ("src+tgt"; either half may be
// empty to keep that side's mode default). -list-policies prints the
// registry: each mechanism's name, kind, parameters, and paper citation.
//
// The -workers, -parallel, and -ff flags change only wall-clock speed;
// every experiment's output is bit-identical at any setting (see
// DESIGN.md, "Parallel deterministic kernel"). -ckpt names a directory
// of post-warmup checkpoints: repeat runs of the same machine restore
// the warmed state instead of re-simulating it, again bit-identically
// (fig5 measures the warmup trajectory itself and always runs cold).
// -resume makes a checkpoint miss an error.
//
// Experiments: table3, fig1, fig5, fig6, fig7, fig8, fig9, fig10, fig11,
// fig12, all. The figure grids (fig1/7/10/11/12, the ext-* extensions,
// faults) run through the unified experiment registry (see pabstsweep
// -list-experiments); one process-wide result cache dedups shared
// simulations, so fig10 and fig12 run their common grid once. table3 and
// the trajectory experiments (fig5/6/8/9), which need per-epoch series
// the seam does not carry, stay on bespoke paths.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"pabst"
	"pabst/internal/cliflags"
	"pabst/internal/exp"
)

var experiments = []struct {
	name string
	desc string
}{
	{"table3", "system configuration"},
	{"fig1", "source-only vs target-only allocation error"},
	{"fig5", "proportional allocation, two stream classes at 7:3"},
	{"fig6", "work conservation with a periodic streamer"},
	{"fig7", "PABST vs single-sided regulators"},
	{"fig8", "proportional distribution of excess bandwidth"},
	{"fig9", "memcached service times under co-location"},
	{"fig10", "weighted slowdown vs a stream aggressor (SPEC proxies)"},
	{"fig11", "work-conserving fairness vs static allocation (IaaS)"},
	{"fig12", "memory efficiency cost of QoS"},
	{"ext-static", "extension: PABST vs a static (non-work-conserving) source limiter"},
	{"ext-skew", "extension: per-MC governors under channel-skewed traffic (Sec III-C1)"},
	{"ext-hetero", "extension: demand-weighted intra-class allocation (Sec V-B)"},
	{"ext-noc", "extension: contention-modeled mesh vs the paper's latency-only fabric"},
	{"faults", "robustness: 7:3 allocation under an injected fault plan vs clean"},
}

func main() {
	scaleName := flag.String("scale", "full", "experiment scale: quick or full")
	list := flag.Bool("list", false, "list experiments and exit")
	listPolicies := flag.Bool("list-policies", false, "list registered QoS policy mechanisms and exit")
	series := flag.Bool("series", false, "print full time series for fig5/fig6")
	jsonOut := flag.Bool("json", false, "emit result tables as JSON instead of text")
	specs := flag.String("spec", "", "comma-separated SPEC proxy subset for fig10-12 (default: all)")
	faults := flag.String("faults", "sat-partition",
		"fault plan for the faults experiment: a preset ("+strings.Join(pabst.FaultPresets(), ", ")+") or a JSON file")
	common := cliflags.Register(flag.CommandLine)
	parallel := flag.Int("parallel", 0, "concurrent simulations in multi-run experiments (0/1 = one at a time)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	defer profiles(*cpuprofile, *memprofile)()

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-8s %s\n", e.name, e.desc)
		}
		fmt.Println("\nworkloads (for -spec; see pabst.Workloads):")
		for _, w := range pabst.Workloads() {
			fmt.Printf("%-12s %-24s %s\n", w.Name, w.Args, w.Desc)
		}
		return
	}
	if *listPolicies {
		printPolicies()
		return
	}

	var scale exp.Scale
	switch *scaleName {
	case "quick":
		scale = exp.Quick()
	case "full":
		scale = exp.Full()
	default:
		fatalf("unknown scale %q (want quick or full)", *scaleName)
	}
	if err := common.Apply(&scale); err != nil {
		fatalf("%v", err)
	}
	scale.Parallel = *parallel

	var workloads []string
	if *specs != "" {
		workloads = strings.Split(*specs, ",")
		for _, w := range workloads {
			if _, err := pabst.WorkloadByName(w, pabst.TileRegion(0), 1); err != nil {
				fatalf("%v", err)
			}
		}
	}

	args := flag.Args()
	if len(args) == 0 {
		fatalf("no experiment given; try -list")
	}
	if len(args) == 1 && args[0] == "all" {
		args = nil
		for _, e := range experiments {
			args = append(args, e.name)
		}
	}

	// One cache across every registry experiment in this invocation:
	// fig10 and fig12 emit the same specs, so their shared grid runs once.
	cache := exp.NewRunCache()
	runRegistry := func(e exp.Experiment) *exp.Table {
		tbl, _, _, err := exp.RunExperimentScale(context.Background(), e, scale, cache)
		check(err)
		return tbl
	}

	emit := func(tables ...*exp.Table) {
		for _, tbl := range tables {
			if *jsonOut {
				b, err := tbl.JSON()
				check(err)
				fmt.Println(string(b))
				continue
			}
			fmt.Print(tbl.String())
		}
	}

	for _, name := range args {
		start := time.Now()
		switch name {
		case "table3":
			fmt.Print(exp.Table3(pabst.Default32Config()))
			fmt.Println()
			fmt.Print(exp.Table3(pabst.Scaled8Config()))
		case "fig5":
			r, err := exp.Fig5Series(scale)
			check(err)
			tbl := r.Table("Figure 5: proportional allocation 7:3 (two 16-core stream classes)")
			tbl.Rows = append(tbl.Rows, exp.Row{
				Label:  "converged at cycle",
				Values: map[string]float64{"steady-share": float64(r.ConvergedAt)},
			})
			emit(tbl)
			if *series {
				printSeries(r)
			}
		case "fig6":
			r, err := exp.Fig6(scale)
			check(err)
			emit(r.Table())
			if *series {
				printSeries(r.Series)
			}
		case "fig8":
			r, err := exp.Fig8(scale)
			check(err)
			emit(r.Table())
		case "fig9":
			r, err := exp.Fig9(scale)
			check(err)
			emit(r.Table())
		case "fig1", "fig7", "fig10", "fig11", "fig12",
			"ext-static", "ext-skew", "ext-hetero", "ext-noc", "faults":
			e, err := registryExperiment(name, workloads, *faults)
			check(err)
			emit(runRegistry(e))
		default:
			fatalf("unknown experiment %q; try -list", name)
		}
		if !*jsonOut {
			fmt.Printf("[%s: %.1fs]\n\n", name, time.Since(start).Seconds())
		}
	}
}

// registryExperiment resolves a registry-routed experiment, honoring the
// -spec workload subset (fig10/11/12 are workload-parameterized) and the
// -faults plan; everything else comes from the registry as registered.
func registryExperiment(name string, workloads []string, faultPlan string) (exp.Experiment, error) {
	if len(workloads) > 0 {
		switch name {
		case "fig10":
			return exp.NewIsolationExperiment("fig10",
				"weighted slowdown of each SPEC proxy vs a 16-core stream aggressor", workloads, false), nil
		case "fig12":
			return exp.NewIsolationExperiment("fig12",
				"memory efficiency under QoS for each SPEC proxy vs the aggressor", workloads, true), nil
		case "fig11":
			return exp.NewFig11Experiment(workloads), nil
		}
	}
	if name == "faults" {
		return exp.NewFaultsExperiment(faultPlan), nil
	}
	return exp.ExperimentByName(name)
}

// printPolicies renders the QoS policy registry: every mechanism's
// name, kind, consumed parameters, and the paper it reproduces.
func printPolicies() {
	fmt.Printf("%-9s %-7s %-56s %s\n", "name", "kind", "description [params]", "citation")
	for _, p := range pabst.Policies() {
		desc := p.Desc
		if p.Params != "" {
			desc += " [" + p.Params + "]"
		}
		fmt.Printf("%-9s %-7s %-56s %s\n", p.Name, p.Kind, desc, p.Cite)
	}
	fmt.Println("\nselect with -policy src+tgt (pabstsim, pabstsweep) or the RunSpec \"policy\" field (pabstserve);")
	fmt.Println("either half may be empty to keep that side's mode default.")
}

func printSeries(r *exp.SeriesResult) {
	fmt.Printf("%12s", "cycle")
	for _, c := range r.Classes {
		fmt.Printf("%16s", c)
	}
	fmt.Printf("%12s\n", "B/cyc")
	for _, p := range r.Points {
		fmt.Printf("%12d", p.Cycle)
		for _, s := range p.Shares {
			fmt.Printf("%16.3f", s)
		}
		fmt.Printf("%12.2f\n", p.BpcSum)
	}
}

// profiles starts a CPU profile (if requested) and returns the function
// that stops it and snapshots the heap (if requested). It runs via defer
// on the normal exit path; fatalf exits skip it, which is fine — a
// failed run's profile is not interesting.
func profiles(cpu, heap string) func() {
	var cf *os.File
	if cpu != "" {
		var err error
		cf, err = os.Create(cpu)
		check(err)
		check(pprof.StartCPUProfile(cf))
	}
	return func() {
		if cf != nil {
			pprof.StopCPUProfile()
			check(cf.Close())
		}
		if heap != "" {
			f, err := os.Create(heap)
			check(err)
			runtime.GC()
			check(pprof.WriteHeapProfile(f))
			check(f.Close())
		}
	}
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pabstsim: "+format+"\n", args...)
	os.Exit(1)
}
