// Command pabstserve runs the PABST sweep service: a long-running,
// fault-tolerant job system over the same exp.RunSpec unit of work the
// sweep CLI executes. Jobs are submitted and observed over REST:
//
//	POST /jobs      {"spec":{"bench":"streams","scale":"quick","params":{"slack":64}}}
//	GET  /jobs      all jobs            GET /jobs/{id}   one job
//	POST /drain     graceful drain      GET  /metrics    Prometheus text
//	GET  /healthz   liveness            GET  /readyz     readiness
//
// The queue is bounded (429 when full), retryable failures back off
// exponentially, panicking simulations fail only their own job, wedged
// workers are detected by heartbeat and replaced, and every accepted
// job is journaled: SIGTERM/SIGINT triggers a graceful drain in which
// in-flight jobs finish or checkpoint-and-requeue, and a restart over
// the same -dir recovers exactly the unfinished work. Re-execution is
// idempotent — a spec's fingerprint pins its bit-identical result.
//
// Usage:
//
//	pabstserve [-addr :8321] [-dir .pabstserve] [-queue n] [-jobs n]
//	           [-attempts n] [-workers n] [-ff] [-smoke [-out f.json]]
//
// -smoke runs a self-contained end-to-end exercise (submit a batch over
// HTTP, wait, drain, verify the journal emptied) and writes a
// BENCH_serve.json receipt instead of serving forever.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pabst/internal/exp"
	"pabst/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8321", "HTTP listen address")
	dir := flag.String("dir", ".pabstserve", "state directory (journal, partial checkpoints, warm store)")
	queue := flag.Int("queue", 64, "bounded queue depth (submissions beyond it get 429)")
	jobs := flag.Int("jobs", 2, "concurrent job executors")
	attempts := flag.Int("attempts", 3, "attempts per job before it fails")
	workers := flag.Int("workers", 0, "worker goroutines per simulation (0/1 = sequential tick)")
	ff := flag.Bool("ff", false, "fast-forward provably idle cycles")
	smoke := flag.Bool("smoke", false, "run the end-to-end smoke exercise and exit")
	out := flag.String("out", "BENCH_serve.json", "smoke receipt path")
	flag.Parse()

	cfg := serve.Config{
		Dir:         *dir,
		QueueDepth:  *queue,
		Workers:     *jobs,
		MaxAttempts: *attempts,
		Exec:        exp.Exec{Workers: *workers, FastForward: *ff},
	}
	if *smoke {
		if err := runSmoke(cfg, *out); err != nil {
			fmt.Fprintf(os.Stderr, "pabstserve: smoke: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(cfg, *addr); err != nil {
		fmt.Fprintf(os.Stderr, "pabstserve: %v\n", err)
		os.Exit(1)
	}
}

// run serves until SIGTERM/SIGINT, then drains gracefully.
func run(cfg serve.Config, addr string) error {
	svc, err := serve.New(cfg)
	if err != nil {
		return err
	}
	svc.Start()
	srv := &http.Server{Addr: addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	fmt.Printf("pabstserve: listening on %s, state in %s\n", addr, cfg.Dir)
	select {
	case err := <-errc:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Println("pabstserve: draining (in-flight jobs finish or checkpoint-and-requeue)")
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Drain(dctx); err != nil {
		return err
	}
	srv.Shutdown(dctx)
	fmt.Println("pabstserve: drained; queued work is journaled and recovers on restart")
	return svc.Close()
}

// smokeReport is the BENCH_serve.json document.
type smokeReport struct {
	Jobs                int     `json:"jobs"`
	Specs               int     `json:"specs"`
	WallSeconds         float64 `json:"wall_seconds"`
	SubmitToCompleteAvg float64 `json:"submit_to_complete_seconds_avg"`
	DrainSeconds        float64 `json:"drain_seconds"`
	JournalRecsAfter    int     `json:"journal_records_after_drain"`
	FingerprintsAgree   bool    `json:"fingerprints_agree"`
}

// runSmoke exercises the whole control plane over real HTTP with a
// sub-second scale: submit a batch, watch it complete, drain, and
// verify the journal compacted to empty. Duplicate specs must report
// identical result fingerprints — the determinism contract observed
// through the service.
func runSmoke(cfg serve.Config, out string) error {
	start := time.Now()
	dir, err := os.MkdirTemp("", "pabstserve-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg.Dir = dir
	cfg.Workers = 2
	cfg.Exec.Scales = map[string]exp.Scale{
		"smoke": {Name: "smoke", Warmup: 10_000, Measure: 15_000, Epoch: 2000, Window: 2000},
	}
	svc, err := serve.New(cfg)
	if err != nil {
		return err
	}
	defer svc.Close()
	svc.Start()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	specs := []exp.RunSpec{
		{Bench: exp.BenchStreams, Scale: "smoke"},
		{Bench: exp.BenchStreams, Scale: "smoke", Params: map[string]uint64{"slack": 64}},
		{Bench: exp.BenchChaser, Scale: "smoke"},
	}
	const perSpec = 2
	for i := 0; i < perSpec; i++ {
		for _, spec := range specs {
			body, _ := json.Marshal(map[string]any{"spec": spec})
			resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				return fmt.Errorf("submit returned %s", resp.Status)
			}
		}
	}
	total := len(specs) * perSpec

	// Poll the REST surface until every job lands.
	deadline := time.Now().Add(5 * time.Minute)
	var views []serve.JobView
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("smoke timed out with jobs %v", svc.Counts())
		}
		resp, err := http.Get(base + "/jobs")
		if err != nil {
			return err
		}
		views = views[:0]
		err = json.NewDecoder(resp.Body).Decode(&views)
		resp.Body.Close()
		if err != nil {
			return err
		}
		done := 0
		for _, v := range views {
			switch v.State {
			case serve.StateDone:
				done++
			case serve.StateFailed, serve.StateCanceled:
				return fmt.Errorf("job %s ended %s: %s", v.ID, v.State, v.Error)
			}
		}
		if done == total {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Duplicate specs must agree bit-for-bit.
	rep := smokeReport{Jobs: total, Specs: len(specs), FingerprintsAgree: true}
	bySpec := make(map[string]string)
	var latency time.Duration
	for _, v := range views {
		if prev, ok := bySpec[v.SpecFingerprint]; ok && prev != v.Result.Fingerprint {
			rep.FingerprintsAgree = false
		}
		bySpec[v.SpecFingerprint] = v.Result.Fingerprint
		if v.FinishedAt != nil {
			latency += v.FinishedAt.Sub(v.SubmittedAt)
		}
	}
	rep.SubmitToCompleteAvg = latency.Seconds() / float64(total)
	if !rep.FingerprintsAgree {
		return fmt.Errorf("duplicate specs produced different result fingerprints")
	}

	// Drain over HTTP; with nothing pending the journal compacts empty.
	dstart := time.Now()
	resp, err := http.Post(base+"/drain", "application/json", nil)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("drain returned %s", resp.Status)
	}
	rep.DrainSeconds = time.Since(dstart).Seconds()
	raw, err := os.ReadFile(dir + "/journal.jsonl")
	if err != nil {
		return err
	}
	rep.JournalRecsAfter = bytes.Count(raw, []byte("\n"))
	if rep.JournalRecsAfter != 0 {
		return fmt.Errorf("journal holds %d records after a clean drain", rep.JournalRecsAfter)
	}
	rep.WallSeconds = time.Since(start).Seconds()

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(doc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("pabstserve smoke: %d jobs over HTTP in %.2fs (avg submit-to-complete %.2fs, drain %.3fs), journal empty — wrote %s\n",
		rep.Jobs, rep.WallSeconds, rep.SubmitToCompleteAvg, rep.DrainSeconds, out)
	return nil
}
