package pabst_test

import (
	"testing"

	"pabst"
)

// TestSteadyStateTickZeroAlloc pins the zero-allocation hot path end to
// end: a saturated two-class stream system — tiles missing every few
// cycles, packets crossing the fabric, the controllers' EDF index churning
// — must allocate nothing per cycle once warmed, with observability
// disabled. This is the whole-system counterpart of the quiescent
// TestDisabledProbesZeroAlloc: every miss exercises the MSHR table, the
// packet pool, the per-MC rings, and the pooled response path.
func TestSteadyStateTickZeroAlloc(t *testing.T) {
	cfg := pabst.Default32Config()
	cfg.PABST.EpochCycles = 2000
	cfg.BWWindow = 1 << 40 // no series sample during the measured run
	b := pabst.NewBuilder(cfg, pabst.ModePABST)
	hi := b.AddClass("hi", 7, cfg.L3Ways/2)
	lo := b.AddClass("lo", 3, cfg.L3Ways/2)
	for i := 0; i < 16; i++ {
		b.Attach(i, hi, pabst.Stream("hi", pabst.TileRegion(i), 128, false))
		b.Attach(16+i, lo, pabst.Stream("lo", pabst.TileRegion(16+i), 128, false))
	}
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.Run(60_000) // settle pools, rings, caches, and index sizing
	allocs := testing.AllocsPerRun(5, func() { sys.Run(4000) })
	if allocs != 0 {
		t.Errorf("steady-state tick allocates: %v allocs per 4000 cycles (2 epochs)", allocs)
	}
}
