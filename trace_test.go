package pabst_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"pabst"
)

// traceConfig is a small, fast system with short epochs so traces carry
// a few dozen epochs in well under a second.
func traceConfig() pabst.SystemConfig {
	cfg := pabst.Default32Config()
	cfg.PABST.EpochCycles = 2000
	cfg.BWWindow = 2000
	return cfg
}

// runTrace builds the bursty two-class scenario (idle gaps make
// fast-forward actually fire) with a JSONL observer under the given
// execution knobs, runs it, and returns the trace bytes.
func runTrace(t *testing.T, workers int, ff bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	observer := pabst.NewObserver(0, pabst.NewJSONLSink(&buf))
	cfg := traceConfig()
	b := pabst.NewBuilder(cfg, pabst.ModePABST,
		pabst.WithWorkers(workers), pabst.WithFastForward(ff), pabst.WithObserver(observer))
	hi := b.AddClass("hi", 7, cfg.L3Ways/2)
	lo := b.AddClass("lo", 3, cfg.L3Ways/2)
	for i := 0; i < 8; i++ {
		b.Attach(i, hi, pabst.Stream("hi", pabst.TileRegion(i), 128, false))
		b.Attach(16+i, lo, pabst.BurstyTraffic("lo", pabst.TileRegion(16+i), 32, 4000, uint64(i)+1))
	}
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.Run(60_000)
	if err := observer.Flush(); err != nil {
		t.Fatal(err)
	}
	if observer.Total() == 0 {
		t.Fatal("observer saw no events")
	}
	return buf.Bytes()
}

// TestGoldenTraceDeterminism is the observability determinism contract:
// trace bytes are identical for every combination of worker count and
// fast-forward, because events are emitted only from the sequential
// epoch hook in a fixed order.
func TestGoldenTraceDeterminism(t *testing.T) {
	golden := runTrace(t, 1, false)
	for _, workers := range []int{1, 4} {
		for _, ff := range []bool{false, true} {
			if workers == 1 && !ff {
				continue
			}
			got := runTrace(t, workers, ff)
			if !bytes.Equal(got, golden) {
				t.Errorf("trace diverged at workers=%d ff=%v (%d vs %d bytes)",
					workers, ff, len(got), len(golden))
			}
		}
	}
}

// TestObserverDoesNotPerturb: arming an observer must not change any
// simulated outcome — metric fingerprints match a probe-free run.
func TestObserverDoesNotPerturb(t *testing.T) {
	run := func(observer *pabst.Observer) string {
		cfg := traceConfig()
		b := pabst.NewBuilder(cfg, pabst.ModePABST, pabst.WithObserver(observer))
		hi := b.AddClass("hi", 7, cfg.L3Ways/2)
		lo := b.AddClass("lo", 3, cfg.L3Ways/2)
		for i := 0; i < 8; i++ {
			b.Attach(i, hi, pabst.Stream("hi", pabst.TileRegion(i), 128, false))
			b.Attach(16+i, lo, pabst.Stream("lo", pabst.TileRegion(16+i), 128, false))
		}
		sys, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		sys.Run(50_000)
		return fmt.Sprintf("%+v gov=%v", sys.Metrics(), sys.GovernorMs())
	}
	off := run(nil)
	on := run(pabst.NewObserver(64))
	if off != on {
		t.Errorf("observer perturbed the simulation:\n off %s\n on  %s", off, on)
	}
}

// TestDisabledProbesZeroAlloc asserts the zero-overhead contract's
// allocation half: with no observer armed, the tick hot path — including
// epoch boundaries — allocates nothing. A quiescent system isolates the
// kernel + probe path from workload-driven allocation.
func TestDisabledProbesZeroAlloc(t *testing.T) {
	cfg := pabst.Default32Config()
	cfg.PABST.EpochCycles = 64
	cfg.BWWindow = 1 << 40 // no series sample during the measured run
	b := pabst.NewBuilder(cfg, pabst.ModePABST)
	b.AddClass("idle", 1, cfg.L3Ways)
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.Run(1000) // settle any first-use allocation
	allocs := testing.AllocsPerRun(10, func() { sys.Run(640) })
	if allocs != 0 {
		t.Errorf("disabled-probe tick path allocates: %v allocs per 640 cycles (10 epochs)", allocs)
	}
}

// TestSnapshotMatchesDeprecatedAccessors pins the consolidation: every
// deprecated accessor and its Snapshot field report the same value.
func TestSnapshotMatchesDeprecatedAccessors(t *testing.T) {
	cfg := traceConfig()
	b := pabst.NewBuilder(cfg, pabst.ModePABST)
	hi := b.AddClass("hi", 7, cfg.L3Ways/2)
	lo := b.AddClass("lo", 3, cfg.L3Ways/2)
	for i := 0; i < 8; i++ {
		b.Attach(i, hi, pabst.Stream("hi", pabst.TileRegion(i), 128, false))
		b.Attach(16+i, lo, pabst.Stream("lo", pabst.TileRegion(16+i), 128, false))
	}
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.Run(50_000)

	snap := sys.Snapshot()
	if snap.Cycle != sys.Now() {
		t.Errorf("Cycle = %d, want %d", snap.Cycle, sys.Now())
	}
	if snap.Sat != sys.SaturatedLastEpoch() {
		t.Error("Sat mismatch")
	}
	for _, c := range []pabst.ClassID{hi, lo} {
		cs := snap.Class(c)
		if cs == nil {
			t.Fatalf("class %d missing from snapshot", c)
		}
		if cs.IPC != sys.ClassIPC(c) {
			t.Errorf("class %d IPC %v != %v", c, cs.IPC, sys.ClassIPC(c))
		}
		if cs.MissLatency != sys.ClassMissLatency(c) {
			t.Errorf("class %d MissLatency %v != %v", c, cs.MissLatency, sys.ClassMissLatency(c))
		}
		if cs.MCReadLatency != sys.ClassMCReadLatency(c) {
			t.Errorf("class %d MCReadLatency %v != %v", c, cs.MCReadLatency, sys.ClassMCReadLatency(c))
		}
		if cs.L3OccupancyBytes != sys.L3OccupancyOf(c) {
			t.Errorf("class %d L3 occupancy %v != %v", c, cs.L3OccupancyBytes, sys.L3OccupancyOf(c))
		}
		if cs.EntitledShare != sys.Share(c) {
			t.Errorf("class %d entitled share %v != %v", c, cs.EntitledShare, sys.Share(c))
		}
		if got, want := cs.TileIPCs, sys.TileIPCs(c); len(got) != len(want) {
			t.Errorf("class %d TileIPCs length %d != %d", c, len(got), len(want))
		}
	}
	utils := sys.MCUtilizations()
	if len(snap.MCs) != len(utils) {
		t.Fatalf("MCs length %d != %d", len(snap.MCs), len(utils))
	}
	for i := range utils {
		if snap.MCs[i].Utilization != utils[i] {
			t.Errorf("MC %d utilization %v != %v", i, snap.MCs[i].Utilization, utils[i])
		}
	}
	m, dm, period, ok := sys.GovernorState(0)
	ts := snap.Tile(0)
	if !ok || ts == nil || !ts.Governor.OK {
		t.Fatal("tile 0 governor missing")
	}
	if ts.Governor.M != m || ts.Governor.DM != dm || ts.Governor.Period != period {
		t.Errorf("tile 0 governor %+v != (%d,%d,%d)", ts.Governor, m, dm, period)
	}
	if gm := snap.GovernorMs(); len(gm) != len(sys.GovernorMs()) {
		t.Errorf("GovernorMs length %d != %d", len(gm), len(sys.GovernorMs()))
	}
	if snap.Tile(10) != nil {
		t.Error("idle tile 10 present in snapshot")
	}
	if snap.Class(99) != nil {
		t.Error("unknown class present in snapshot")
	}
}

// TestOptionsMatchConfigFields pins that options are exactly equivalent
// to the config fields they replace.
func TestOptionsMatchConfigFields(t *testing.T) {
	run := func(b *pabst.Builder, cfgL3Ways int) string {
		c := b.AddClass("c", 1, cfgL3Ways)
		for i := 0; i < 4; i++ {
			b.Attach(i, c, pabst.Stream("s", pabst.TileRegion(i), 128, false))
		}
		sys, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		sys.Run(30_000)
		return fmt.Sprintf("%+v", sys.Metrics())
	}
	cfg := traceConfig()
	viaOpts := run(pabst.NewBuilder(cfg, pabst.ModePABST,
		pabst.WithWorkers(2), pabst.WithFastForward(true)), cfg.L3Ways)
	cfg2 := traceConfig()
	cfg2.Workers = 2
	cfg2.FastForward = true
	viaCfg := run(pabst.NewBuilder(cfg2, pabst.ModePABST), cfg2.L3Ways)
	if viaOpts != viaCfg {
		t.Errorf("options and config fields disagree:\n opts %s\n cfg  %s", viaOpts, viaCfg)
	}
}

// TestMetricRegistryRender exercises the pull-style registry end to end.
func TestMetricRegistryRender(t *testing.T) {
	cfg := traceConfig()
	b := pabst.NewBuilder(cfg, pabst.ModePABST)
	hi := b.AddClass("hi", 7, cfg.L3Ways/2)
	b.AddClass("lo", 3, cfg.L3Ways/2)
	for i := 0; i < 4; i++ {
		b.Attach(i, hi, pabst.Stream("hi", pabst.TileRegion(i), 128, false))
	}
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.Run(20_000)

	var sb strings.Builder
	if err := sys.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"pabst_cycle 20000",
		"pabst_epochs_total 9",
		`pabst_class_entitled_share{class="hi"} 0.7`,
		`pabst_mc_reads_total{mc="0"} `,
		`pabst_governor_m{tile="0"} `,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}
	if v, ok := sys.MetricRegistry().Sample("pabst_cycle"); !ok || v != 20000 {
		t.Errorf("Sample(pabst_cycle) = %v, %v", v, ok)
	}
}
