package pabst_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"pabst"
)

// traceConfig is a small, fast system with short epochs so traces carry
// a few dozen epochs in well under a second.
func traceConfig() pabst.SystemConfig {
	cfg := pabst.Default32Config()
	cfg.PABST.EpochCycles = 2000
	cfg.BWWindow = 2000
	return cfg
}

// runTrace builds the bursty two-class scenario (idle gaps make
// fast-forward actually fire) with a JSONL observer under the given
// execution knobs, runs it, and returns the trace bytes.
func runTrace(t *testing.T, workers int, ff bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	observer := pabst.NewObserver(0, pabst.NewJSONLSink(&buf))
	cfg := traceConfig()
	b := pabst.NewBuilder(cfg, pabst.ModePABST,
		pabst.WithWorkers(workers), pabst.WithFastForward(ff), pabst.WithObserver(observer))
	hi := b.AddClass("hi", 7, cfg.L3Ways/2)
	lo := b.AddClass("lo", 3, cfg.L3Ways/2)
	for i := 0; i < 8; i++ {
		b.Attach(i, hi, pabst.Stream("hi", pabst.TileRegion(i), 128, false))
		b.Attach(16+i, lo, pabst.BurstyTraffic("lo", pabst.TileRegion(16+i), 32, 4000, uint64(i)+1))
	}
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.Run(60_000)
	if err := observer.Flush(); err != nil {
		t.Fatal(err)
	}
	if observer.Total() == 0 {
		t.Fatal("observer saw no events")
	}
	return buf.Bytes()
}

// TestGoldenTraceDeterminism is the observability determinism contract:
// trace bytes are identical for every combination of worker count and
// fast-forward, because events are emitted only from the sequential
// epoch hook in a fixed order.
func TestGoldenTraceDeterminism(t *testing.T) {
	golden := runTrace(t, 1, false)
	for _, workers := range []int{1, 4} {
		for _, ff := range []bool{false, true} {
			if workers == 1 && !ff {
				continue
			}
			got := runTrace(t, workers, ff)
			if !bytes.Equal(got, golden) {
				t.Errorf("trace diverged at workers=%d ff=%v (%d vs %d bytes)",
					workers, ff, len(got), len(golden))
			}
		}
	}
}

// TestObserverDoesNotPerturb: arming an observer must not change any
// simulated outcome — metric fingerprints match a probe-free run.
func TestObserverDoesNotPerturb(t *testing.T) {
	run := func(observer *pabst.Observer) string {
		cfg := traceConfig()
		b := pabst.NewBuilder(cfg, pabst.ModePABST, pabst.WithObserver(observer))
		hi := b.AddClass("hi", 7, cfg.L3Ways/2)
		lo := b.AddClass("lo", 3, cfg.L3Ways/2)
		for i := 0; i < 8; i++ {
			b.Attach(i, hi, pabst.Stream("hi", pabst.TileRegion(i), 128, false))
			b.Attach(16+i, lo, pabst.Stream("lo", pabst.TileRegion(16+i), 128, false))
		}
		sys, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		sys.Run(50_000)
		snap := sys.Snapshot()
		return fmt.Sprintf("%+v gov=%v", sys.Metrics(), snap.GovernorMs())
	}
	off := run(nil)
	on := run(pabst.NewObserver(64))
	if off != on {
		t.Errorf("observer perturbed the simulation:\n off %s\n on  %s", off, on)
	}
}

// TestDisabledProbesZeroAlloc asserts the zero-overhead contract's
// allocation half: with no observer armed, the tick hot path — including
// epoch boundaries — allocates nothing. A quiescent system isolates the
// kernel + probe path from workload-driven allocation.
func TestDisabledProbesZeroAlloc(t *testing.T) {
	cfg := pabst.Default32Config()
	cfg.PABST.EpochCycles = 64
	cfg.BWWindow = 1 << 40 // no series sample during the measured run
	b := pabst.NewBuilder(cfg, pabst.ModePABST)
	b.AddClass("idle", 1, cfg.L3Ways)
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.Run(1000) // settle any first-use allocation
	allocs := testing.AllocsPerRun(10, func() { sys.Run(640) })
	if allocs != 0 {
		t.Errorf("disabled-probe tick path allocates: %v allocs per 640 cycles (10 epochs)", allocs)
	}
}

// TestSnapshotConsistency pins the Snapshot contract now that the
// per-facet accessors are gone: one Snapshot call captures a coherent
// view whose facets agree with each other and with the live system.
func TestSnapshotConsistency(t *testing.T) {
	cfg := traceConfig()
	b := pabst.NewBuilder(cfg, pabst.ModePABST)
	hi := b.AddClass("hi", 7, cfg.L3Ways/2)
	lo := b.AddClass("lo", 3, cfg.L3Ways/2)
	for i := 0; i < 8; i++ {
		b.Attach(i, hi, pabst.Stream("hi", pabst.TileRegion(i), 128, false))
		b.Attach(16+i, lo, pabst.Stream("lo", pabst.TileRegion(16+i), 128, false))
	}
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.Run(50_000)

	snap := sys.Snapshot()
	if snap.Cycle != sys.Now() {
		t.Errorf("Cycle = %d, want %d", snap.Cycle, sys.Now())
	}
	if got, want := snap.Window, sys.Metrics(); fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
		t.Errorf("Window %+v != live Metrics %+v", got, want)
	}
	for _, c := range []pabst.ClassID{hi, lo} {
		cs := snap.Class(c)
		if cs == nil {
			t.Fatalf("class %d missing from snapshot", c)
		}
		if len(cs.TileIPCs) != 8 {
			t.Errorf("class %d TileIPCs length %d, want 8 (one per attached tile)", c, len(cs.TileIPCs))
		}
		// The class IPC is defined as the mean over the class's tiles.
		var sum float64
		for _, v := range cs.TileIPCs {
			sum += v
		}
		if mean := sum / float64(len(cs.TileIPCs)); cs.IPC != mean {
			t.Errorf("class %d IPC %v != mean(TileIPCs) %v", c, cs.IPC, mean)
		}
		if cs.IPC <= 0 {
			t.Errorf("class %d IPC %v, want > 0 after a loaded run", c, cs.IPC)
		}
		if cs.MissLatency <= 0 || cs.MCReadLatency <= 0 {
			t.Errorf("class %d latencies (%v, %v), want > 0", c, cs.MissLatency, cs.MCReadLatency)
		}
		if cs.L3OccupancyBytes == 0 {
			t.Errorf("class %d L3 occupancy 0 after a streaming run", c)
		}
	}
	// Entitled shares derive from the 7:3 weights regardless of traffic.
	if got := snap.Class(hi).EntitledShare; got != 0.7 {
		t.Errorf("hi entitled share %v, want 0.7", got)
	}
	if got := snap.Class(lo).EntitledShare; got != 0.3 {
		t.Errorf("lo entitled share %v, want 0.3", got)
	}
	if len(snap.MCs) != cfg.NumMCs {
		t.Fatalf("MCs length %d != NumMCs %d", len(snap.MCs), cfg.NumMCs)
	}
	for i := range snap.MCs {
		if u := snap.MCs[i].Utilization; u < 0 || u > 1 {
			t.Errorf("MC %d utilization %v outside [0,1]", i, u)
		}
	}
	// GovernorMs mirrors the per-tile governor facet, in tile order.
	gm := snap.GovernorMs()
	var want []uint64
	for i := 0; i < cfg.NumTiles(); i++ {
		if ts := snap.Tile(i); ts != nil && ts.Governor.OK {
			want = append(want, ts.Governor.M)
		}
	}
	if len(gm) != len(want) {
		t.Fatalf("GovernorMs length %d != %d governed tiles", len(gm), len(want))
	}
	for i := range gm {
		if gm[i] != want[i] {
			t.Errorf("GovernorMs[%d] = %d != Tile governor M %d", i, gm[i], want[i])
		}
	}
	ts := snap.Tile(0)
	if ts == nil || !ts.Governor.OK {
		t.Fatal("tile 0 governor missing")
	}
	if snap.Tile(10) != nil {
		t.Error("idle tile 10 present in snapshot")
	}
	if snap.Class(99) != nil {
		t.Error("unknown class present in snapshot")
	}
}

// TestOptionsMatchConfigFields pins that options are exactly equivalent
// to the config fields they replace.
func TestOptionsMatchConfigFields(t *testing.T) {
	run := func(b *pabst.Builder, cfgL3Ways int) string {
		c := b.AddClass("c", 1, cfgL3Ways)
		for i := 0; i < 4; i++ {
			b.Attach(i, c, pabst.Stream("s", pabst.TileRegion(i), 128, false))
		}
		sys, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		sys.Run(30_000)
		return fmt.Sprintf("%+v", sys.Metrics())
	}
	cfg := traceConfig()
	viaOpts := run(pabst.NewBuilder(cfg, pabst.ModePABST,
		pabst.WithWorkers(2), pabst.WithFastForward(true)), cfg.L3Ways)
	cfg2 := traceConfig()
	cfg2.Workers = 2
	cfg2.FastForward = true
	viaCfg := run(pabst.NewBuilder(cfg2, pabst.ModePABST), cfg2.L3Ways)
	if viaOpts != viaCfg {
		t.Errorf("options and config fields disagree:\n opts %s\n cfg  %s", viaOpts, viaCfg)
	}
}

// TestMetricRegistryRender exercises the pull-style registry end to end.
func TestMetricRegistryRender(t *testing.T) {
	cfg := traceConfig()
	b := pabst.NewBuilder(cfg, pabst.ModePABST)
	hi := b.AddClass("hi", 7, cfg.L3Ways/2)
	b.AddClass("lo", 3, cfg.L3Ways/2)
	for i := 0; i < 4; i++ {
		b.Attach(i, hi, pabst.Stream("hi", pabst.TileRegion(i), 128, false))
	}
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.Run(20_000)

	var sb strings.Builder
	if err := sys.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"pabst_cycle 20000",
		"pabst_epochs_total 9",
		`pabst_class_entitled_share{class="hi"} 0.7`,
		`pabst_mc_reads_total{mc="0"} `,
		`pabst_governor_m{tile="0"} `,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}
	if v, ok := sys.MetricRegistry().Sample("pabst_cycle"); !ok || v != 20000 {
		t.Errorf("Sample(pabst_cycle) = %v, %v", v, ok)
	}
}
