// Package pabst is a library-grade reproduction of "PABST: Proportionally
// Allocated Bandwidth at the Source and Target" (Hower, Cain, Waldspurger,
// HPCA 2017): a software-controlled memory-bandwidth QoS mechanism that
// throttles request rates at the source (a governor at each private cache)
// and prioritizes requests at the target (an earliest-virtual-deadline
// arbiter in each memory controller), both driven by the same per-class
// proportional share.
//
// The package bundles the mechanism together with the full simulated
// substrate it runs on — cores, caches, mesh, and banked DDR — behind a
// builder API:
//
//	cfg := pabst.Default32Config()
//	b := pabst.NewBuilder(cfg, pabst.ModePABST)
//	hi := b.AddClass("latency-critical", 7, 8)
//	lo := b.AddClass("batch", 3, 8)
//	for i := 0; i < 16; i++ {
//	    b.Attach(i, hi, pabst.Stream("hot", pabst.TileRegion(i), 128, false))
//	    b.Attach(16+i, lo, pabst.Stream("bg", pabst.TileRegion(16+i), 128, false))
//	}
//	sys, err := b.Build()
//	...
//	sys.Warmup(200_000)
//	sys.Run(500_000)
//	m := sys.Metrics()
//	fmt.Printf("shares: %.2f / %.2f\n", m.ShareOf(hi), m.ShareOf(lo))
//
// Regulation modes select which halves of PABST are active, enabling the
// paper's source-only and target-only baselines for comparison.
package pabst

import (
	"fmt"

	"pabst/internal/config"
	"pabst/internal/fault"
	"pabst/internal/mem"
	"pabst/internal/qos"
	"pabst/internal/qospolicy"
	"pabst/internal/regulate"
	"pabst/internal/soc"
	"pabst/internal/stats"
	"pabst/internal/workload"
)

// Mode selects which halves of the mechanism are active.
type Mode = regulate.Mode

// Regulation modes.
const (
	// ModeNone disables bandwidth QoS entirely (baseline).
	ModeNone = regulate.ModeNone
	// ModeSourceOnly enables only the source governors.
	ModeSourceOnly = regulate.ModeSourceOnly
	// ModeTargetOnly enables only the target priority arbiters.
	ModeTargetOnly = regulate.ModeTargetOnly
	// ModePABST enables both halves (the paper's mechanism).
	ModePABST = regulate.ModePABST
	// ModeStaticSource is the related-work baseline: a fixed,
	// non-work-conserving source rate limit, no target priority.
	ModeStaticSource = regulate.ModeStaticSource
)

// ParseMode converts a mode name ("none", "source-only", "target-only",
// "pabst") to a Mode.
func ParseMode(s string) (Mode, error) { return regulate.ParseMode(s) }

// Modes returns every mode in presentation order.
func Modes() []Mode { return regulate.Modes() }

// PolicyInfo describes one registered QoS policy plugin: its registry
// name, kind ("source" or "target"), one-line description, consumed
// parameters, and paper citation.
type PolicyInfo = qospolicy.Info

// Policies returns every registered policy plugin — source policies
// first, then target policies, each sorted by name.
func Policies() []PolicyInfo { return qospolicy.Describe() }

// SourcePolicies lists registered source-policy names, sorted.
func SourcePolicies() []string { return qospolicy.SourceNames() }

// TargetPolicies lists registered target-policy names, sorted.
func TargetPolicies() []string { return qospolicy.TargetNames() }

// ParsePolicyPair splits and validates a "source+target" selector.
// Either half may be empty ("+dpq", "bankreg+") to override only one
// side of the mode-derived default pair.
func ParsePolicyPair(s string) (source, target string, err error) {
	return qospolicy.ParsePair(s)
}

// PolicyPairForMode returns the (source, target) policy pair a legacy
// regulation mode is sugar for.
func PolicyPairForMode(m Mode) (source, target string) { return qospolicy.FromMode(m) }

// ClassID identifies a QoS class.
type ClassID = mem.ClassID

// WBCharge selects which class pays for shared-cache writebacks
// (Section V-C of the paper).
type WBCharge = qos.WBCharge

// Writeback accounting policies.
const (
	// ChargeDemander bills the class whose request caused the eviction
	// (the paper's evaluation setting, and the default).
	ChargeDemander = qos.ChargeDemander
	// ChargeOwner bills the class that allocated the evicted line.
	ChargeOwner = qos.ChargeOwner
	// ChargeFixed bills SystemConfig.WBFixedClass regardless of cause.
	ChargeFixed = qos.ChargeFixed
)

// SystemConfig describes the simulated machine (Table III of the paper).
type SystemConfig = config.System

// Default32Config returns the paper's 32-core, four-channel system.
func Default32Config() SystemConfig { return config.Default32() }

// Scaled8Config returns the 4x-scaled 8-core system used for the
// memcached experiment.
func Scaled8Config() SystemConfig { return config.Scaled8() }

// MeshScaledConfig returns a big-machine variant of the paper's tile: a
// cols×rows mesh with the same per-tile hierarchy, memory channels
// scaled with the tile count, and hierarchical SAT gossip so the epoch
// heartbeat does not assume a single-hop broadcast at mesh scale. It is
// the scaling-study configuration behind `make bench-scale`.
func MeshScaledConfig(cols, rows int) SystemConfig { return config.MeshScaled(cols, rows) }

// LoadConfig reads and validates a JSON system configuration.
func LoadConfig(path string) (SystemConfig, error) { return config.Load(path) }

// FaultPlan describes deterministic fault injection into the SAT
// broadcast, the DRAM controllers, and the NoC. Assign one to
// SystemConfig.Faults; a nil plan injects nothing and costs nothing.
type FaultPlan = fault.Plan

// LoadFaultPlan resolves a preset name (see FaultPresets) or a JSON
// fault-plan file.
func LoadFaultPlan(nameOrPath string) (*FaultPlan, error) {
	p, err := fault.Load(nameOrPath)
	if err != nil {
		return nil, err
	}
	return &p, nil
}

// FaultPresets lists the built-in fault-plan names.
func FaultPresets() []string { return fault.PresetNames() }

// FaultReport summarizes injected faults and the governors' degraded-
// signal behavior (watchdog holds, decays, resync progress, divergence).
type FaultReport = soc.FaultReport

// Region is a private address range for a workload thread.
type Region = workload.Region

// TileRegion returns a disjoint 256 MiB region for a tile's thread;
// experiments use it to keep footprints from aliasing (large enough for
// the biggest SPEC proxy footprint).
func TileRegion(tile int) Region {
	return Region{Base: mem.Addr(uint64(tile+1) << 32), Size: 256 << 20}
}

// Generator produces a thread's memory-op stream.
type Generator = workload.Generator

// Stream returns the bandwidth-limited streaming microbenchmark.
func Stream(name string, r Region, strideBytes uint64, write bool) Generator {
	return workload.NewStream(name, r, strideBytes, write)
}

// Chaser returns the latency-limited pointer-chasing microbenchmark with
// the given number of independent chains (the paper uses 4).
func Chaser(name string, r Region, chains int, seed uint64) Generator {
	return workload.NewChaser(name, r, chains, seed)
}

// Periodic returns a streamer alternating between a memory-resident phase
// of ddrCycles and a cache-resident phase of cacheCycles, wall-clock
// synchronized across all threads of the class.
func Periodic(name string, ddr, cached Region, ddrCycles, cacheCycles uint64) Generator {
	return workload.NewPeriodicStream(name, ddr, cached, ddrCycles, cacheCycles)
}

// BurstyTraffic returns a clustered-traffic generator: bursts of
// burstOps independent line reads separated by idleGap compute cycles.
// The returned value records per-burst completion times through its
// BurstTimes histogram.
func BurstyTraffic(name string, r Region, burstOps, idleGap int, seed uint64) *workload.Bursty {
	return workload.NewBursty(name, r, burstOps, idleGap, seed)
}

// FilteredStream returns a streamer restricted to addresses the predicate
// accepts — the building block for deliberately channel-skewed traffic in
// the per-controller regulation experiments.
func FilteredStream(name string, r Region, strideBytes uint64, write bool, keep func(mem.Addr) bool) Generator {
	return workload.NewFilteredStream(name, r, strideBytes, write, keep)
}

// Addr is a physical address (for FilteredStream predicates).
type Addr = mem.Addr

// SpecProxy returns the synthetic proxy for one of the paper's eight
// SPEC CPU 2006 workloads (GemsFDTD, lbm, libquantum, mcf, milc, omnetpp,
// soplex, sphinx3).
func SpecProxy(name string, r Region, seed uint64) (Generator, error) {
	p, ok := workload.SpecByName(name)
	if !ok {
		return nil, fmt.Errorf("pabst: unknown SPEC workload %q", name)
	}
	return workload.NewSpec(p, r, seed)
}

// SpecNames lists the SPEC proxy workloads in suite order.
func SpecNames() []string {
	var names []string
	for _, p := range workload.SpecSuite() {
		names = append(names, p.Name)
	}
	return names
}

// MemcachedServer returns the transaction-serving proxy; its service-time
// histogram is retrievable through ServiceTimes on the returned value.
func MemcachedServer(r Region, seed uint64) *workload.Memcached {
	m, err := workload.NewMemcached(workload.DefaultMemcachedParams(), r, seed)
	if err != nil {
		panic(err) // defaults are always valid
	}
	return m
}

// Recorder captures a generator's op stream into a replayable trace.
type Recorder = workload.Recorder

// NewRecorder wraps gen, keeping at most limit recorded ops (0 =
// unlimited).
func NewRecorder(gen Generator, limit int) *Recorder { return workload.NewRecorder(gen, limit) }

// Replay returns a generator that replays a recorded trace in a loop.
func Replay(name string, ops []workload.Op) (Generator, error) {
	return workload.NewReplayer(name, ops)
}

// Hist is a log-scaled latency histogram.
type Hist = stats.Hist

// Metrics summarizes a measurement window.
type Metrics = soc.Metrics

// Series is a per-class bandwidth time series.
type Series = stats.Series

// Builder assembles a system: classes, tile placements, then Build.
type Builder struct {
	cfg  SystemConfig
	mode Mode
	reg  *qos.Registry

	observer    *Observer
	attachments []attachment
	err         error
}

type attachment struct {
	tile  int
	class ClassID
	gen   Generator
}

// Option configures a Builder at construction. Options replace the
// config-field poking previously duplicated across commands and
// examples; they apply in order, after cfg is copied into the builder.
type Option func(*Builder)

// WithWorkers sets the parallel-tick worker count (1 = sequential).
func WithWorkers(n int) Option {
	return func(b *Builder) { b.cfg.Workers = n }
}

// WithFastForward enables (or disables) idle-cycle fast-forward.
func WithFastForward(on bool) Option {
	return func(b *Builder) { b.cfg.FastForward = on }
}

// WithKernel selects the scheduling kernel: "cycle" visits every
// component every cycle (the default, also selected by ""), "event"
// keeps per-component event queues and visits only components with due
// work — bit-identical outcomes, much faster on idle-heavy machines.
// Unknown names surface as errors at Build.
func WithKernel(kernel string) Option {
	return func(b *Builder) { b.cfg.Kernel = kernel }
}

// WithFaultPlan installs a fault-injection plan (nil injects nothing).
func WithFaultPlan(p *FaultPlan) Option {
	return func(b *Builder) { b.cfg.Faults = p }
}

// WithPolicy selects QoS mechanisms by registry name, overriding the
// mode-derived defaults. An empty string keeps that side's default, so
// WithPolicy("", "dpq") swaps only the target half. Unknown names
// surface as errors at Build.
func WithPolicy(source, target string) Option {
	return func(b *Builder) {
		if source != "" {
			b.cfg.SourcePolicy = source
		}
		if target != "" {
			b.cfg.TargetPolicy = target
		}
	}
}

// WithObserver arms epoch-boundary trace emission into o. A nil
// observer keeps tracing off (the zero-overhead default).
func WithObserver(o *Observer) Option {
	return func(b *Builder) { b.observer = o }
}

// NewBuilder starts a system description. Options, if any, are applied
// immediately.
func NewBuilder(cfg SystemConfig, mode Mode, opts ...Option) *Builder {
	b := &Builder{cfg: cfg, mode: mode, reg: qos.NewRegistry()}
	for _, o := range opts {
		o(b)
	}
	return b
}

// AddClass registers a QoS class with a proportional-share weight and an
// exclusive L3 way allocation, returning its ID. Errors surface at Build.
func (b *Builder) AddClass(name string, weight uint64, l3Ways int) ClassID {
	c, err := b.reg.Add(name, weight, l3Ways)
	if err != nil {
		if b.err == nil {
			b.err = err
		}
		return 0
	}
	return c.ID
}

// Attach places a generator on a tile under a class.
func (b *Builder) Attach(tile int, class ClassID, gen Generator) *Builder {
	b.attachments = append(b.attachments, attachment{tile, class, gen})
	return b
}

// Build validates and wires the system.
func (b *Builder) Build() (*System, error) {
	if b.err != nil {
		return nil, b.err
	}
	inner, err := soc.New(b.cfg, b.reg, b.mode)
	if err != nil {
		return nil, err
	}
	for _, a := range b.attachments {
		if err := inner.Attach(a.tile, a.class, a.gen); err != nil {
			return nil, err
		}
	}
	if b.observer != nil {
		if err := inner.SetObserver(b.observer); err != nil {
			return nil, err
		}
	}
	if err := inner.Finalize(); err != nil {
		return nil, err
	}
	return &System{inner: inner, reg: b.reg}, nil
}

// System is a runnable simulated machine.
type System struct {
	inner *soc.System
	reg   *qos.Registry
}

// Run advances the simulation by cycles.
func (s *System) Run(cycles uint64) { s.inner.Run(cycles) }

// Close releases the tick worker pool, if SystemConfig.Workers enabled
// one. The system stays readable (Metrics, Series, ...) but must not Run
// again. Safe on systems without a pool, so callers can defer it
// unconditionally.
func (s *System) Close() { s.inner.Close() }

// SkippedCycles reports how many cycles the kernel fast-forwarded over
// (always zero unless SystemConfig.FastForward is set).
func (s *System) SkippedCycles() uint64 { return s.inner.SkippedCycles() }

// Warmup runs cycles and then resets measurement state, so Metrics
// reflects steady-state behavior only.
func (s *System) Warmup(cycles uint64) { s.inner.Warmup(cycles) }

// ResetStats starts a new measurement window.
func (s *System) ResetStats() { s.inner.ResetStats() }

// Now returns the current cycle.
func (s *System) Now() uint64 { return s.inner.Now() }

// Metrics returns the current window's summary.
func (s *System) Metrics() Metrics { return s.inner.Metrics() }

// Series returns the continuously sampled per-class bandwidth series.
func (s *System) Series() *Series { return s.inner.Series() }

// Snapshot captures the system's observable state — window metrics plus
// per-class, per-tile, and per-controller detail — in one coherent
// value. It replaces the per-facet accessors (ClassIPC, TileIPCs,
// Share, ClassMissLatency, ClassMCReadLatency, SaturatedLastEpoch,
// MCUtilizations, L3OccupancyOf, GovernorState, GovernorMs) that
// earlier versions exposed individually.
func (s *System) Snapshot() Snapshot { return s.inner.Snapshot() }

// SetWeight changes a class's proportional share at run time (the
// software policy knob); governors and arbiters honor it at the next
// epoch / request.
func (s *System) SetWeight(class ClassID, weight uint64) error {
	return s.reg.SetWeight(class, weight)
}

// MCForAddr returns the memory controller serving addr under the
// system's channel hash.
func (s *System) MCForAddr(addr Addr) int { return s.inner.MCForAddr(addr) }

// FaultReport returns the fault-injection and degradation summary for
// the system lifetime (zero-valued with Active=false when no plan is
// configured).
func (s *System) FaultReport() FaultReport { return s.inner.FaultReport() }

// ClassTailLatency returns the p-th percentile (0 < p <= 100) of a
// class's end-to-end L2-miss latency in cycles over the current
// measurement window (histogram resolution ~6%).
func (s *System) ClassTailLatency(class ClassID, p float64) uint64 {
	return s.inner.ClassTailLatency(class, p)
}

// ClassLatencyHist returns a class's end-to-end L2-miss latency
// distribution over the current measurement window.
func (s *System) ClassLatencyHist(class ClassID) Hist {
	return s.inner.ClassLatencyHist(class)
}

// Config returns the system's configuration.
func (s *System) Config() SystemConfig { return s.inner.Config() }

// Mode returns the regulation mode.
func (s *System) Mode() Mode { return s.inner.Mode() }

// PolicyPair returns the resolved (source, target) policy-plugin names
// the system was wired with.
func (s *System) PolicyPair() (source, target string) { return s.inner.Policies() }
