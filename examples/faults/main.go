// Faults: run the 7:3 proportional-allocation scenario twice — once
// clean, once with a SAT partition cutting a quarter of the governors
// off the heartbeat broadcast — and show that the degradation machinery
// (stale-signal watchdog, conservative fallback, bounded resync) keeps
// the bandwidth split intact and restores lockstep after the heal.
package main

import (
	"fmt"
	"log"

	"pabst"
)

func run(plan *pabst.FaultPlan) (*pabst.System, pabst.ClassID, pabst.ClassID) {
	cfg := pabst.Default32Config()
	var opts []pabst.Option
	if plan != nil {
		opts = append(opts, pabst.WithFaultPlan(plan))
		// Arm the watchdog, fallback, and resync knobs (all default off).
		cfg.PABST = cfg.PABST.WithDegradation()
	}
	b := pabst.NewBuilder(cfg, pabst.ModePABST, opts...)
	hi := b.AddClass("frontend", 7, cfg.L3Ways/2)
	lo := b.AddClass("batch", 3, cfg.L3Ways/2)
	for i := 0; i < 16; i++ {
		b.Attach(i, hi, pabst.Stream("frontend", pabst.TileRegion(i), 128, false))
		b.Attach(16+i, lo, pabst.Stream("batch", pabst.TileRegion(16+i), 128, false))
	}
	sys, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	sys.Warmup(400_000)
	sys.Run(400_000)
	return sys, hi, lo
}

func main() {
	// The partition cuts tiles [0,8) — half the frontend class — off the
	// SAT broadcast for epochs [10,30).
	plan, err := pabst.LoadFaultPlan("sat-partition")
	if err != nil {
		log.Fatal(err)
	}

	clean, hi, lo := run(nil)
	faulted, fhi, flo := run(plan)

	cm, fm := clean.Metrics(), faulted.Metrics()
	// A second window after the partition healed and resync completed.
	faulted.ResetStats()
	faulted.Run(400_000)
	rm := faulted.Metrics()

	fmt.Printf("%-22s %10s %10s %10s\n", "", "clean", "faulted", "recovered")
	fmt.Printf("%-22s %10.3f %10.3f %10.3f\n", "frontend share (0.70)",
		cm.ShareOf(hi), fm.ShareOf(fhi), rm.ShareOf(fhi))
	fmt.Printf("%-22s %10.3f %10.3f %10.3f\n", "batch share    (0.30)",
		cm.ShareOf(lo), fm.ShareOf(flo), rm.ShareOf(flo))
	fmt.Printf("%-22s %10.1f %10.1f %10.1f\n", "total B/cycle",
		cm.BytesPerCycle(hi)+cm.BytesPerCycle(lo),
		fm.BytesPerCycle(fhi)+fm.BytesPerCycle(flo),
		rm.BytesPerCycle(fhi)+rm.BytesPerCycle(flo))

	rep := faulted.FaultReport()
	fmt.Printf("\nfault report (faulted run):\n")
	fmt.Printf("  injected:            %s\n", rep.Injected)
	fmt.Printf("  stale intervals:     %d (watchdog expiries)\n", rep.StaleIntervals)
	fmt.Printf("  decay steps:         %d\n", rep.Decays)
	fmt.Printf("  resync epochs:       %d\n", rep.ResyncEpochs)
	fmt.Printf("  worst M divergence:  %d over %d epochs\n", rep.DivergenceMax, rep.DivergedEpochs)
	fmt.Printf("  re-converged in:     %d epochs; diverged now: %v\n", rep.ReconvergeEpochs, rep.Diverged)
}
