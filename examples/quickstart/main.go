// Quickstart: build the paper's 32-core system, create two QoS classes
// with a 7:3 bandwidth split, run streaming workloads in both, and verify
// that PABST delivers the split.
package main

import (
	"fmt"
	"log"

	"pabst"
)

func main() {
	cfg := pabst.Default32Config()
	b := pabst.NewBuilder(cfg, pabst.ModePABST)

	// Two classes of service: weights are the software-visible knob; the
	// hardware derives strides (inverse weights) from them. Each class
	// also gets half the shared cache, CAT-style.
	hi := b.AddClass("frontend", 7, cfg.L3Ways/2)
	lo := b.AddClass("batch", 3, cfg.L3Ways/2)

	// 16 cores per class, all streaming through memory at the paper's
	// 128-byte stride.
	for i := 0; i < 16; i++ {
		b.Attach(i, hi, pabst.Stream("frontend", pabst.TileRegion(i), 128, false))
		b.Attach(16+i, lo, pabst.Stream("batch", pabst.TileRegion(16+i), 128, false))
	}

	sys, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Let the governors converge, then measure.
	sys.Warmup(400_000)
	sys.Run(400_000)

	m := sys.Metrics()
	fmt.Printf("entitled shares:  %.2f / %.2f\n", sys.Share(hi), sys.Share(lo))
	fmt.Printf("observed shares:  %.2f / %.2f\n", m.ShareOf(hi), m.ShareOf(lo))
	fmt.Printf("bandwidth:        %.1f + %.1f = %.1f B/cycle (peak %.1f)\n",
		m.BytesPerCycle(hi), m.BytesPerCycle(lo),
		m.BytesPerCycle(hi)+m.BytesPerCycle(lo), cfg.PeakBytesPerCycle())
	fmt.Printf("mean miss latency: frontend %.0f cycles, batch %.0f cycles\n",
		sys.ClassMissLatency(hi), sys.ClassMissLatency(lo))
}
