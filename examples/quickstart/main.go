// Quickstart: build the paper's 32-core system, create two QoS classes
// with a 7:3 bandwidth split, run streaming workloads in both, and verify
// that PABST delivers the split — reading everything through one
// Snapshot and tracing the governors' convergence with an Observer.
package main

import (
	"fmt"
	"log"

	"pabst"
)

func main() {
	cfg := pabst.Default32Config()

	// An observer captures epoch-scoped trace events (governor registers,
	// arbiter state, DRAM service) into a ring; sinks could additionally
	// stream them as JSONL/CSV. Passing no observer keeps tracing off at
	// zero cost.
	observer := pabst.NewObserver(0)
	b := pabst.NewBuilder(cfg, pabst.ModePABST, pabst.WithObserver(observer))

	// Two classes of service: weights are the software-visible knob; the
	// hardware derives strides (inverse weights) from them. Each class
	// also gets half the shared cache, CAT-style.
	hi := b.AddClass("frontend", 7, cfg.L3Ways/2)
	lo := b.AddClass("batch", 3, cfg.L3Ways/2)

	// 16 cores per class, all streaming through memory at the paper's
	// 128-byte stride.
	for i := 0; i < 16; i++ {
		b.Attach(i, hi, pabst.Stream("frontend", pabst.TileRegion(i), 128, false))
		b.Attach(16+i, lo, pabst.Stream("batch", pabst.TileRegion(16+i), 128, false))
	}

	sys, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Let the governors converge, then measure.
	sys.Warmup(400_000)
	sys.Run(400_000)

	// One Snapshot is the coherent view of everything observable: window
	// metrics plus per-class, per-tile, and per-controller detail.
	snap := sys.Snapshot()
	f, bt := snap.Class(hi), snap.Class(lo)
	fmt.Printf("entitled shares:  %.2f / %.2f\n", f.EntitledShare, bt.EntitledShare)
	fmt.Printf("observed shares:  %.2f / %.2f\n", f.Share, bt.Share)
	fmt.Printf("bandwidth:        %.1f + %.1f = %.1f B/cycle (peak %.1f)\n",
		f.BytesPerCycle, bt.BytesPerCycle, f.BytesPerCycle+bt.BytesPerCycle,
		cfg.PeakBytesPerCycle())
	fmt.Printf("mean miss latency: frontend %.0f cycles, batch %.0f cycles\n",
		f.MissLatency, bt.MissLatency)

	// The trace shows the feedback loop at work: count saturated epochs
	// and read tile 0's final regulator registers from the event ring.
	satEpochs := 0
	var last pabst.Event
	for _, e := range observer.Events() {
		if e.Kind == pabst.KindGovernor && e.Unit == 0 {
			last = e
			if e.Sat {
				satEpochs++
			}
		}
	}
	fmt.Printf("trace: %d events, tile-0 governor ended at M=%d (period %d), %d/%d traced epochs saturated\n",
		observer.Total(), last.M, last.Period, satEpochs, snap.Epochs)
}
