// Colocation: the paper's headline use case (Section II, Use Case 1) —
// protect a latency-critical service from a bandwidth-hungry background
// job while still letting the background job soak up idle bandwidth.
//
// A memcached-like server runs on one tile of the scaled 8-core system;
// stream aggressors run on the other seven. The example compares the
// server's transaction service-time distribution in isolation, co-located
// without QoS, and co-located under PABST with a 20:1 share.
package main

import (
	"fmt"
	"log"

	"pabst"
)

func run(label string, colocate bool, mode pabst.Mode) {
	cfg := pabst.Scaled8Config()
	// The isolated arm leaves seven tiles idle; fast-forward skips those
	// dead cycles without changing any simulated outcome.
	b := pabst.NewBuilder(cfg, mode, pabst.WithFastForward(true))
	svc := b.AddClass("memcached", 20, cfg.L3Ways/2)
	bg := b.AddClass("background", 1, cfg.L3Ways/2)

	server := pabst.MemcachedServer(pabst.TileRegion(0), 42)
	b.Attach(0, svc, server)
	if colocate {
		for i := 1; i < 8; i++ {
			b.Attach(i, bg, pabst.Stream("bg", pabst.TileRegion(i), 128, false))
		}
	}

	sys, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	sys.Warmup(300_000)
	server.ResetStats()
	sys.Run(1_500_000)

	h := server.ServiceTimes()
	m := sys.Metrics()
	fmt.Printf("%-22s %6d txns  mean %7.0f  p95 %7d  p99 %7d cycles  (bg: %.1f B/cyc)\n",
		label, h.Count(), h.Mean(), h.Percentile(95), h.Percentile(99), m.BytesPerCycle(bg))
}

func main() {
	fmt.Println("memcached service times (2 GHz cycles):")
	run("isolated", false, pabst.ModeNone)
	run("colocated, no QoS", true, pabst.ModeNone)
	run("colocated, PABST 20:1", true, pabst.ModePABST)
	fmt.Println("\nPABST keeps the tail near the isolated level while the")
	fmt.Println("background job still consumes the bandwidth the server leaves idle.")
}
