// IaaS: the paper's second use case (Section II, Use Case 2) — four
// equal-priority tenants on one consolidated host, each guaranteed a 25%
// bandwidth share, with any slack redistributed proportionally.
//
// Tenant demand varies: two VMs run bandwidth-hungry proxies, two run
// latency-bound proxies that leave slack. The example shows each tenant's
// observed share and that the heavy tenants pick up what the light ones
// leave — without ever pushing a light tenant below its entitlement.
package main

import (
	"fmt"
	"log"

	"pabst"
)

func main() {
	cfg := pabst.Default32Config()
	b := pabst.NewBuilder(cfg, pabst.ModePABST)

	tenants := []struct {
		name     string
		workload string
	}{
		{"vm-analytics", "libquantum"}, // bandwidth-hungry
		{"vm-fluidsim", "lbm"},         // bandwidth-hungry
		{"vm-router", "omnetpp"},       // latency-bound, leaves slack
		{"vm-speech", "sphinx3"},       // latency-bound, leaves slack
	}

	var ids []pabst.ClassID
	for _, t := range tenants {
		ids = append(ids, b.AddClass(t.name, 1, cfg.L3Ways/4))
	}
	for c, t := range tenants {
		for i := 0; i < 8; i++ {
			tile := c*8 + i
			gen, err := pabst.SpecProxy(t.workload, pabst.TileRegion(tile), uint64(tile)+1)
			if err != nil {
				log.Fatal(err)
			}
			b.Attach(tile, ids[c], gen)
		}
	}

	sys, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	sys.Warmup(400_000)
	sys.Run(600_000)

	// One snapshot reads every tenant's delivery state coherently.
	snap := sys.Snapshot()
	m := snap.Window
	fmt.Println("four tenants, equal 25% entitlements:")
	for c, t := range tenants {
		cs := snap.Class(ids[c])
		fmt.Printf("  %-14s (%-10s)  share %.2f  %.1f B/cyc  IPC %.2f\n",
			t.name, t.workload, cs.Share, cs.BytesPerCycle, cs.IPC)
	}
	fmt.Printf("total: %.1f B/cyc of %.1f peak\n", float64(m.TotalBytes())/float64(m.Cycles), cfg.PeakBytesPerCycle())
	fmt.Println("\nheavy tenants absorb the slack the light tenants leave,")
	fmt.Println("while every tenant's minimum share remains enforceable.")
}
