// Policy: PABST is a mechanism; allocation policy belongs to software
// (Section II-C). This example drives the pabst/policy package's
// latency-SLO controller against a co-located background flood: the
// controller finds the smallest service weight that meets the latency
// target, leaving the rest of the machine to the background job.
package main

import (
	"fmt"
	"log"

	"pabst"
	"pabst/policy"
)

func main() {
	cfg := pabst.Default32Config()
	b := pabst.NewBuilder(cfg, pabst.ModePABST)
	svc := b.AddClass("service", 1, cfg.L3Ways/2) // starts at a 50% share
	bg := b.AddClass("background", 1, cfg.L3Ways/2)

	// The service is latency-bound (pointer chasing); the background is
	// a write-stream flood.
	for i := 0; i < 16; i++ {
		b.Attach(i, svc, pabst.Chaser("service", pabst.TileRegion(i), 4, uint64(i)+1))
		b.Attach(16+i, bg, pabst.Stream("background", pabst.TileRegion(16+i), 128, true))
	}
	sys, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	sys.Warmup(200_000)

	ctl := &policy.LatencyTarget{Class: svc, TargetCycles: 280}
	logLines, err := policy.Drive(sys, 100_000, 12, ctl)
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range logLines {
		fmt.Println(l)
	}

	sys.ResetStats()
	sys.Run(100_000)
	snap := sys.Snapshot()
	fmt.Printf("\nconverged: weight=%d, service latency %.0f cycles (target 280), background %.1f B/cyc\n",
		ctl.Weight(), snap.Class(svc).MissLatency, snap.Class(bg).BytesPerCycle)
	fmt.Println("the controller found the smallest service weight that meets the")
	fmt.Println("latency target, leaving the rest of the machine to the background job.")
}
