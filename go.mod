module pabst

go 1.22
