package pabst_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"pabst"
)

// ckptScale keeps the matrix fast; bit-identity is checked just as
// rigorously by a short run as a long one.
const (
	ckptWarmup  = 12_000
	ckptMeasure = 20_000
)

// ckptSetup describes one machine shape in the round-trip matrix.
type ckptSetup struct {
	name  string
	build func(opts ...pabst.Option) (*pabst.System, error)
}

func ckptSetups(t *testing.T) []ckptSetup {
	t.Helper()
	streamMix := func(opts ...pabst.Option) (*pabst.System, error) {
		cfg := pabst.Scaled8Config()
		cfg.Seed = 7
		b := pabst.NewBuilder(cfg, pabst.ModePABST, opts...)
		hi := b.AddClass("hi", 7, cfg.L3Ways/2)
		lo := b.AddClass("lo", 3, cfg.L3Ways-cfg.L3Ways/2)
		for i := 0; i < 4; i++ {
			b.Attach(i, hi, pabst.Stream(fmt.Sprintf("hot%d", i), pabst.TileRegion(i), 64, false))
			b.Attach(4+i, lo, pabst.Chaser(fmt.Sprintf("bg%d", i), pabst.TileRegion(4+i), 4, uint64(100+i)))
		}
		return b.Build()
	}
	targetOnly := func(opts ...pabst.Option) (*pabst.System, error) {
		cfg := pabst.Scaled8Config()
		cfg.Seed = 11
		b := pabst.NewBuilder(cfg, pabst.ModeTargetOnly, opts...)
		hi := b.AddClass("fg", 3, cfg.L3Ways/2)
		lo := b.AddClass("bg", 1, cfg.L3Ways-cfg.L3Ways/2)
		for i := 0; i < 4; i++ {
			b.Attach(i, hi, pabst.Stream(fmt.Sprintf("s%d", i), pabst.TileRegion(i), 128, i%2 == 0))
			b.Attach(4+i, lo, pabst.Stream(fmt.Sprintf("t%d", i), pabst.TileRegion(4+i), 64, false))
		}
		return b.Build()
	}
	plan, err := pabst.LoadFaultPlan("sat-drop")
	if err != nil {
		t.Fatalf("load fault plan: %v", err)
	}
	faults := func(opts ...pabst.Option) (*pabst.System, error) {
		cfg := pabst.Scaled8Config()
		cfg.Seed = 13
		cfg.PABST = cfg.PABST.WithDegradation()
		b := pabst.NewBuilder(cfg, pabst.ModePABST, append([]pabst.Option{pabst.WithFaultPlan(plan)}, opts...)...)
		hi := b.AddClass("70%-class", 7, cfg.L3Ways/2)
		lo := b.AddClass("30%-class", 3, cfg.L3Ways-cfg.L3Ways/2)
		for i := 0; i < 4; i++ {
			b.Attach(i, hi, pabst.Stream(fmt.Sprintf("w%d", i), pabst.TileRegion(i), 64, false))
			b.Attach(4+i, lo, pabst.Stream(fmt.Sprintf("v%d", i), pabst.TileRegion(4+i), 64, false))
		}
		return b.Build()
	}
	return []ckptSetup{
		{"streams-pabst", streamMix},
		{"target-only", targetOnly},
		{"faults", faults},
	}
}

// renderState flattens everything observable about a system into
// comparable bytes: the full snapshot, the governor registers, and the
// sampled bandwidth series.
func renderState(s *pabst.System) string {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	snap := s.Snapshot()
	if err := enc.Encode(snap); err != nil {
		panic(err)
	}
	if err := enc.Encode(snap.GovernorMs()); err != nil {
		panic(err)
	}
	if err := enc.Encode(s.Series().Samples); err != nil {
		panic(err)
	}
	return buf.String()
}

// TestCheckpointRoundTripMatrix is the PR's headline guarantee: for
// three machine shapes (plain PABST, target-only, fault-injected) a
// system checkpointed after warmup and restored — under every
// combination of worker count and fast-forward — continues bit-identical
// to an uninterrupted run. The original system must also be unperturbed
// by having been checkpointed.
func TestCheckpointRoundTripMatrix(t *testing.T) {
	for _, setup := range ckptSetups(t) {
		setup := setup
		t.Run(setup.name, func(t *testing.T) {
			// Uninterrupted reference run, sequential.
			ref, err := setup.build()
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			ref.Warmup(ckptWarmup)
			ref.Run(ckptMeasure)
			want := renderState(ref)

			// Checkpoint after warmup, then continue the original: the
			// save walk must be a pure read.
			orig, err := setup.build()
			if err != nil {
				t.Fatal(err)
			}
			defer orig.Close()
			orig.Warmup(ckptWarmup)
			var ck bytes.Buffer
			if err := orig.Checkpoint(&ck); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
			orig.Run(ckptMeasure)
			if got := renderState(orig); got != want {
				t.Fatalf("checkpointing perturbed the running system\n--- want\n%s\n--- got\n%s", want, got)
			}

			for _, workers := range []int{1, 4} {
				for _, ff := range []bool{false, true} {
					name := fmt.Sprintf("restore-w%d-ff%v", workers, ff)
					sys, err := pabst.Restore(bytes.NewReader(ck.Bytes()),
						pabst.WithWorkers(workers), pabst.WithFastForward(ff))
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					sys.Run(ckptMeasure)
					if got := renderState(sys); got != want {
						t.Errorf("%s diverged from uninterrupted run\n--- want\n%s\n--- got\n%s", name, want, got)
					}
					sys.Close()
				}
			}
		})
	}
}

// TestCheckpointBuilderRestore exercises the caller-built restore path
// with the same matrix semantics, including a parallel writer: a system
// checkpointed while running with Workers=4 restores into a fresh
// sequential builder bit-identically.
func TestCheckpointBuilderRestore(t *testing.T) {
	setup := ckptSetups(t)[0]

	ref, err := setup.build()
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	ref.Warmup(ckptWarmup)
	ref.Run(ckptMeasure)
	want := renderState(ref)

	// Parallel fast-forwarding writer.
	src, err := setup.build(pabst.WithWorkers(4), pabst.WithFastForward(true))
	if err != nil {
		t.Fatal(err)
	}
	src.Warmup(ckptWarmup)
	var ck bytes.Buffer
	if err := src.Checkpoint(&ck); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	src.Close()

	// Restore through a builder describing the same machine.
	cfg := pabst.Scaled8Config()
	cfg.Seed = 7
	b := pabst.NewBuilder(cfg, pabst.ModePABST)
	hi := b.AddClass("hi", 7, cfg.L3Ways/2)
	lo := b.AddClass("lo", 3, cfg.L3Ways-cfg.L3Ways/2)
	for i := 0; i < 4; i++ {
		b.Attach(i, hi, pabst.Stream(fmt.Sprintf("hot%d", i), pabst.TileRegion(i), 64, false))
		b.Attach(4+i, lo, pabst.Chaser(fmt.Sprintf("bg%d", i), pabst.TileRegion(4+i), 4, uint64(100+i)))
	}
	sys, err := b.Restore(bytes.NewReader(ck.Bytes()))
	if err != nil {
		t.Fatalf("builder restore: %v", err)
	}
	defer sys.Close()
	sys.Run(ckptMeasure)
	if got := renderState(sys); got != want {
		t.Errorf("builder-restored run diverged\n--- want\n%s\n--- got\n%s", want, got)
	}
}

// TestCheckpointTypedErrors pins the failure taxonomy: corrupt streams,
// incompatible versions, and structural mismatches each surface their
// dedicated sentinel.
func TestCheckpointTypedErrors(t *testing.T) {
	setup := ckptSetups(t)[0]
	sys, err := setup.build()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.Warmup(ckptWarmup)
	var ck bytes.Buffer
	if err := sys.Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}
	raw := ck.Bytes()

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{4, len(raw) / 3, len(raw) - 4} {
			_, err := pabst.Restore(bytes.NewReader(raw[:cut]))
			if !errors.Is(err, pabst.ErrCkptCorrupt) {
				t.Errorf("cut %d: want ErrCkptCorrupt, got %v", cut, err)
			}
		}
	})

	t.Run("bit-flip", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[len(bad)-32] ^= 0x40 // payload byte; caught by the CRC trailer
		_, err := pabst.Restore(bytes.NewReader(bad))
		if !errors.Is(err, pabst.ErrCkptCorrupt) {
			t.Errorf("want ErrCkptCorrupt, got %v", err)
		}
	})

	t.Run("version", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[8]++ // format version lives right after the 8-byte magic
		_, err := pabst.Restore(bytes.NewReader(bad))
		if !errors.Is(err, pabst.ErrCkptVersion) {
			t.Errorf("want ErrCkptVersion, got %v", err)
		}
	})

	t.Run("mismatched-builder", func(t *testing.T) {
		cfg := pabst.Scaled8Config()
		cfg.Seed = 7
		b := pabst.NewBuilder(cfg, pabst.ModePABST)
		hi := b.AddClass("different-name", 7, cfg.L3Ways/2)
		lo := b.AddClass("lo", 3, cfg.L3Ways-cfg.L3Ways/2)
		for i := 0; i < 4; i++ {
			b.Attach(i, hi, pabst.Stream(fmt.Sprintf("hot%d", i), pabst.TileRegion(i), 64, false))
			b.Attach(4+i, lo, pabst.Chaser(fmt.Sprintf("bg%d", i), pabst.TileRegion(4+i), 4, uint64(100+i)))
		}
		_, err := b.Restore(bytes.NewReader(raw))
		if !errors.Is(err, pabst.ErrCkptMismatch) {
			t.Errorf("want ErrCkptMismatch, got %v", err)
		}
	})

	t.Run("mismatched-fault-plan", func(t *testing.T) {
		plan, err := pabst.LoadFaultPlan("sat-drop")
		if err != nil {
			t.Fatal(err)
		}
		_, err = pabst.Restore(bytes.NewReader(raw), pabst.WithFaultPlan(plan))
		if !errors.Is(err, pabst.ErrCkptMismatch) {
			t.Errorf("want ErrCkptMismatch, got %v", err)
		}
	})

	t.Run("info", func(t *testing.T) {
		info, err := pabst.ReadCheckpointInfo(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		if info.Cycle != sys.Now() {
			t.Errorf("info cycle = %d, want %d", info.Cycle, sys.Now())
		}
		fp, err := sys.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if info.Fingerprint != fp {
			t.Errorf("info fingerprint does not match the live system's")
		}
	})
}

// TestCheckpointClosureGenerators pins the two-path contract for
// generators without a build recipe: Checkpoint serializes their state,
// package-level Restore refuses (no recipe in the metadata), and
// Builder.Restore — where the caller reconstructs the closure — works
// bit-identically.
func TestCheckpointClosureGenerators(t *testing.T) {
	build := func() (*pabst.System, error) {
		cfg := pabst.Scaled8Config()
		cfg.Seed = 21
		b := pabst.NewBuilder(cfg, pabst.ModePABST)
		hi := b.AddClass("hi", 3, cfg.L3Ways/2)
		lo := b.AddClass("lo", 1, cfg.L3Ways-cfg.L3Ways/2)
		b.Attach(0, hi, pabst.FilteredStream("skew", pabst.TileRegion(0), 64, false,
			func(a pabst.Addr) bool { return a%128 == 0 }))
		b.Attach(1, lo, pabst.Stream("bg", pabst.TileRegion(1), 64, false))
		return b.Build()
	}

	ref, err := build()
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	ref.Warmup(ckptWarmup)
	ref.Run(ckptMeasure)
	want := renderState(ref)

	src, err := build()
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	src.Warmup(ckptWarmup)
	var ck bytes.Buffer
	if err := src.Checkpoint(&ck); err != nil {
		t.Fatalf("checkpoint with closure generator: %v", err)
	}

	if _, err := pabst.Restore(bytes.NewReader(ck.Bytes())); !errors.Is(err, pabst.ErrCkptUnsupported) {
		t.Errorf("package Restore of closure generator: want ErrCkptUnsupported, got %v", err)
	}

	cfg := pabst.Scaled8Config()
	cfg.Seed = 21
	b := pabst.NewBuilder(cfg, pabst.ModePABST)
	hi := b.AddClass("hi", 3, cfg.L3Ways/2)
	lo := b.AddClass("lo", 1, cfg.L3Ways-cfg.L3Ways/2)
	b.Attach(0, hi, pabst.FilteredStream("skew", pabst.TileRegion(0), 64, false,
		func(a pabst.Addr) bool { return a%128 == 0 }))
	b.Attach(1, lo, pabst.Stream("bg", pabst.TileRegion(1), 64, false))
	sys, err := b.Restore(bytes.NewReader(ck.Bytes()))
	if err != nil {
		t.Fatalf("builder restore: %v", err)
	}
	defer sys.Close()
	sys.Run(ckptMeasure)
	if got := renderState(sys); got != want {
		t.Errorf("closure-generator restore diverged\n--- want\n%s\n--- got\n%s", want, got)
	}
}
