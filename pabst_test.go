package pabst_test

import (
	"math"
	"testing"

	"pabst"
)

func TestBuilderEndToEnd(t *testing.T) {
	cfg := pabst.Scaled8Config()
	cfg.PABST.EpochCycles = 2000
	cfg.BWWindow = 2000
	b := pabst.NewBuilder(cfg, pabst.ModePABST)
	hi := b.AddClass("hi", 3, cfg.L3Ways/2)
	lo := b.AddClass("lo", 1, cfg.L3Ways/2)
	for i := 0; i < 4; i++ {
		b.Attach(i, hi, pabst.Stream("hi", pabst.TileRegion(i), 128, false))
		b.Attach(4+i, lo, pabst.Stream("lo", pabst.TileRegion(4+i), 128, false))
	}
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys.Warmup(150_000)
	sys.Run(150_000)
	m := sys.Metrics()
	if math.Abs(m.ShareOf(hi)-0.75) > 0.08 {
		t.Fatalf("hi share %.2f, want ~0.75", m.ShareOf(hi))
	}
	snap := sys.Snapshot()
	if snap.Class(hi).IPC == 0 || snap.Class(lo).IPC == 0 {
		t.Fatal("classes made no progress")
	}
	if snap.Class(hi).MissLatency == 0 || snap.Class(hi).MCReadLatency == 0 {
		t.Fatal("latency accounting empty")
	}
	if sys.Now() != 300_000 {
		t.Fatalf("Now() = %d", sys.Now())
	}
	if sys.Mode() != pabst.ModePABST {
		t.Fatal("mode lost")
	}
}

func TestBuilderErrorPaths(t *testing.T) {
	cfg := pabst.Scaled8Config()
	// Zero weight surfaces at Build.
	b := pabst.NewBuilder(cfg, pabst.ModeNone)
	b.AddClass("bad", 0, 4)
	if _, err := b.Build(); err == nil {
		t.Fatal("zero-weight class accepted")
	}
	// Out-of-range tile surfaces at Build.
	b = pabst.NewBuilder(cfg, pabst.ModeNone)
	c := b.AddClass("ok", 1, 4)
	b.Attach(99, c, pabst.Stream("s", pabst.TileRegion(0), 128, false))
	if _, err := b.Build(); err == nil {
		t.Fatal("out-of-range tile accepted")
	}
	// Oversubscribed L3 surfaces at Build.
	b = pabst.NewBuilder(cfg, pabst.ModeNone)
	b.AddClass("a", 1, cfg.L3Ways)
	b.AddClass("b", 1, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("oversubscribed L3 accepted")
	}
}

func TestSpecProxyNames(t *testing.T) {
	names := pabst.SpecNames()
	if len(names) != 8 {
		t.Fatalf("SpecNames = %v", names)
	}
	for _, n := range names {
		if _, err := pabst.SpecProxy(n, pabst.TileRegion(0), 1); err != nil {
			t.Fatalf("SpecProxy(%s): %v", n, err)
		}
	}
	if _, err := pabst.SpecProxy("nonesuch", pabst.TileRegion(0), 1); err == nil {
		t.Fatal("unknown proxy accepted")
	}
}

func TestParseModeFacade(t *testing.T) {
	for _, m := range pabst.Modes() {
		got, err := pabst.ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%v) = %v, %v", m, got, err)
		}
	}
}

func TestSetWeightLive(t *testing.T) {
	cfg := pabst.Scaled8Config()
	cfg.PABST.EpochCycles = 2000
	cfg.BWWindow = 2000
	b := pabst.NewBuilder(cfg, pabst.ModePABST)
	a := b.AddClass("a", 1, cfg.L3Ways/2)
	c := b.AddClass("b", 1, cfg.L3Ways/2)
	for i := 0; i < 4; i++ {
		b.Attach(i, a, pabst.Stream("a", pabst.TileRegion(i), 128, false))
		b.Attach(4+i, c, pabst.Stream("b", pabst.TileRegion(4+i), 128, false))
	}
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys.Warmup(150_000)
	sys.Run(100_000)
	even := sys.Metrics().ShareOf(a)
	if math.Abs(even-0.5) > 0.08 {
		t.Fatalf("equal weights give share %.2f", even)
	}
	if err := sys.SetWeight(a, 4); err != nil {
		t.Fatal(err)
	}
	reweighted := sys.Snapshot()
	if got := reweighted.Class(a).EntitledShare; got != 0.8 {
		t.Fatalf("entitled share after reweight = %.2f", got)
	}
	sys.Warmup(150_000)
	sys.Run(100_000)
	if got := sys.Metrics().ShareOf(a); math.Abs(got-0.8) > 0.08 {
		t.Fatalf("share after live reweight = %.2f, want ~0.80", got)
	}
}

func TestMemcachedServerFacade(t *testing.T) {
	m := pabst.MemcachedServer(pabst.TileRegion(0), 7)
	if m.Name() != "memcached" {
		t.Fatal("wrong generator")
	}
}

func TestTileRegionsDisjoint(t *testing.T) {
	for i := 0; i < 31; i++ {
		a, b := pabst.TileRegion(i), pabst.TileRegion(i+1)
		if uint64(a.Base)+a.Size > uint64(b.Base) {
			t.Fatalf("regions %d and %d overlap", i, i+1)
		}
	}
}

func TestConfigRoundTripFacade(t *testing.T) {
	dir := t.TempDir()
	cfg := pabst.Default32Config()
	if err := cfg.WriteFile(dir + "/c.json"); err != nil {
		t.Fatal(err)
	}
	got, err := pabst.LoadConfig(dir + "/c.json")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != cfg.Name {
		t.Fatal("round trip mismatch")
	}
}
