package pabst_test

import (
	"fmt"

	"pabst"
)

// ExampleNewBuilder shows the core workflow: describe classes, place
// workloads, build, run, measure.
func ExampleNewBuilder() {
	cfg := pabst.Scaled8Config()
	b := pabst.NewBuilder(cfg, pabst.ModePABST)

	hi := b.AddClass("frontend", 3, cfg.L3Ways/2)
	lo := b.AddClass("batch", 1, cfg.L3Ways/2)
	for i := 0; i < 4; i++ {
		b.Attach(i, hi, pabst.Stream("frontend", pabst.TileRegion(i), 128, false))
		b.Attach(4+i, lo, pabst.Stream("batch", pabst.TileRegion(4+i), 128, false))
	}

	sys, err := b.Build()
	if err != nil {
		fmt.Println(err)
		return
	}
	snap := sys.Snapshot()
	fmt.Printf("entitled: %.2f / %.2f\n", snap.Class(hi).EntitledShare, snap.Class(lo).EntitledShare)

	sys.Warmup(200_000)
	sys.Run(200_000)
	m := sys.Metrics()
	fmt.Printf("observed close to entitlement: %v\n", m.ShareOf(hi) > 0.65 && m.ShareOf(hi) < 0.85)
	// Output:
	// entitled: 0.75 / 0.25
	// observed close to entitlement: true
}

// ExampleSystem_SetWeight shows the software policy knob: shares can be
// changed while the system runs and the hardware follows at the next
// epoch.
func ExampleSystem_SetWeight() {
	cfg := pabst.Scaled8Config()
	b := pabst.NewBuilder(cfg, pabst.ModePABST)
	a := b.AddClass("a", 1, cfg.L3Ways/2)
	c := b.AddClass("b", 1, cfg.L3Ways/2)
	for i := 0; i < 4; i++ {
		b.Attach(i, a, pabst.Stream("a", pabst.TileRegion(i), 128, false))
		b.Attach(4+i, c, pabst.Stream("b", pabst.TileRegion(4+i), 128, false))
	}
	sys, _ := b.Build()
	before := sys.Snapshot()
	fmt.Printf("before: %.2f\n", before.Class(a).EntitledShare)
	if err := sys.SetWeight(a, 3); err != nil {
		fmt.Println(err)
		return
	}
	after := sys.Snapshot()
	fmt.Printf("after: %.2f\n", after.Class(a).EntitledShare)
	// Output:
	// before: 0.50
	// after: 0.75
}

// ExampleSpecProxy lists the paper's SPEC CPU 2006 workload proxies.
func ExampleSpecProxy() {
	for _, name := range pabst.SpecNames() {
		fmt.Println(name)
	}
	// Output:
	// GemsFDTD
	// lbm
	// libquantum
	// mcf
	// milc
	// omnetpp
	// soplex
	// sphinx3
}
