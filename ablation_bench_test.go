// Ablation benches for the design choices DESIGN.md calls out. Each
// bench runs the canonical 7:3 two-stream-class allocation (or the mix
// its parameter matters for) with one knob moved, and reports how well
// the split holds and how much throughput the system sustains:
//
//	go test -bench=Ablation -benchmem
package pabst_test

import (
	"fmt"
	"math"
	"testing"

	"pabst"
	"pabst/internal/dram"
)

// runStreams73 runs the canonical 7:3 allocation and returns (hi share,
// total B/cyc).
func runStreams73(b *testing.B, mut func(*pabst.SystemConfig)) (float64, float64) {
	b.Helper()
	cfg := pabst.Default32Config()
	cfg.PABST.EpochCycles = 2000
	cfg.BWWindow = 2000
	mut(&cfg)
	bl := pabst.NewBuilder(cfg, pabst.ModePABST)
	hi := bl.AddClass("hi", 7, cfg.L3Ways/2)
	lo := bl.AddClass("lo", 3, cfg.L3Ways/2)
	for i := 0; i < 16; i++ {
		bl.Attach(i, hi, pabst.Stream("hi", pabst.TileRegion(i), 128, false))
		bl.Attach(16+i, lo, pabst.Stream("lo", pabst.TileRegion(16+i), 128, false))
	}
	sys, err := bl.Build()
	if err != nil {
		b.Fatal(err)
	}
	sys.Warmup(100_000)
	sys.Run(150_000)
	m := sys.Metrics()
	return m.ShareOf(hi), m.BytesPerCycle(hi) + m.BytesPerCycle(lo)
}

func reportAllocation(b *testing.B, label string, share, bpc float64) {
	b.Helper()
	b.ReportMetric(math.Abs(share-0.7)/0.7*100, label+"/err%")
	b.ReportMetric(bpc, label+"/B-per-cyc")
}

func BenchmarkAblationEpochLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, epoch := range []uint64{500, 2000, 10000, 20000} {
			share, bpc := runStreams73(b, func(c *pabst.SystemConfig) { c.PABST.EpochCycles = epoch })
			reportAllocation(b, fmt.Sprintf("epoch-%d", epoch), share, bpc)
		}
	}
}

func BenchmarkAblationScaleF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, f := range []uint64{16, 256, 4096} {
			share, bpc := runStreams73(b, func(c *pabst.SystemConfig) { c.PABST.ScaleF = f })
			reportAllocation(b, fmt.Sprintf("F-%d", f), share, bpc)
		}
	}
}

func BenchmarkAblationBurstCredit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, burst := range []int{1, 16, 64} {
			share, bpc := runStreams73(b, func(c *pabst.SystemConfig) { c.PABST.BurstCredit = burst })
			reportAllocation(b, fmt.Sprintf("burst-%d", burst), share, bpc)
		}
	}
}

func BenchmarkAblationPagePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, pol := range []dram.PagePolicy{dram.ClosedPage, dram.OpenPage} {
			share, bpc := runStreams73(b, func(c *pabst.SystemConfig) { c.DRAM.Policy = pol })
			reportAllocation(b, pol.String(), share, bpc)
		}
	}
}

func BenchmarkAblationRefresh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		share, bpc := runStreams73(b, func(c *pabst.SystemConfig) {})
		reportAllocation(b, "no-refresh", share, bpc)
		share, bpc = runStreams73(b, func(c *pabst.SystemConfig) {
			c.DRAM.Timing = c.DRAM.Timing.WithRefresh()
		})
		reportAllocation(b, "refresh", share, bpc)
	}
}

func BenchmarkAblationFrontQueueDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, q := range []int{8, 32, 128} {
			share, bpc := runStreams73(b, func(c *pabst.SystemConfig) {
				c.DRAM.FrontReadQ = q
				c.DRAM.FrontWriteQ = q
				c.DRAM.WriteHighWater = q * 3 / 4
				c.DRAM.WriteLowWater = q / 4
			})
			reportAllocation(b, fmt.Sprintf("queue-%d", q), share, bpc)
		}
	}
}

// BenchmarkAblationSlack measures the arbiter slack on the chaser mix,
// where target-side priority matters most.
func BenchmarkAblationSlack(b *testing.B) {
	run := func(slack uint64) float64 {
		cfg := pabst.Default32Config()
		cfg.PABST.EpochCycles = 2000
		cfg.BWWindow = 2000
		cfg.PABST.Slack = slack
		bl := pabst.NewBuilder(cfg, pabst.ModePABST)
		hi := bl.AddClass("chaser", 3, cfg.L3Ways/2)
		lo := bl.AddClass("stream", 1, cfg.L3Ways/2)
		for i := 0; i < 16; i++ {
			bl.Attach(i, hi, pabst.Chaser("chaser", pabst.TileRegion(i), 8, uint64(i)+1))
			bl.Attach(16+i, lo, pabst.Stream("s", pabst.TileRegion(16+i), 128, true))
		}
		sys, err := bl.Build()
		if err != nil {
			b.Fatal(err)
		}
		sys.Warmup(100_000)
		sys.Run(150_000)
		return sys.Metrics().ShareOf(hi)
	}
	for i := 0; i < b.N; i++ {
		for _, slack := range []uint64{8, 128, 4096} {
			b.ReportMetric(run(slack), fmt.Sprintf("slack-%d/chaser-share", slack))
		}
	}
}

func BenchmarkAblationPerMCGovernors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		share, bpc := runStreams73(b, func(c *pabst.SystemConfig) { c.PABST.PerMCGovernors = true })
		reportAllocation(b, "per-mc", share, bpc)
		share, bpc = runStreams73(b, func(c *pabst.SystemConfig) {})
		reportAllocation(b, "global", share, bpc)
	}
}

func BenchmarkAblationBankQueues(b *testing.B) {
	for i := 0; i < b.N; i++ {
		share, bpc := runStreams73(b, func(c *pabst.SystemConfig) {})
		reportAllocation(b, "single-pool", share, bpc)
		share, bpc = runStreams73(b, func(c *pabst.SystemConfig) { c.DRAM.BankQueueDepth = 2 })
		reportAllocation(b, "two-stage", share, bpc)
	}
}

func BenchmarkAblationEpochJitter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, j := range []uint64{0, 200, 1000} {
			share, bpc := runStreams73(b, func(c *pabst.SystemConfig) { c.PABST.EpochJitter = j })
			reportAllocation(b, fmt.Sprintf("jitter-%d", j), share, bpc)
		}
	}
}
