# Build and test tiers. `make check` is the tier-1 gate (build + vet +
# tests); `make robust` adds the race detector, which the parallel tick
# kernel and the fault-injection chaos sweeps are expected to pass too.

GO ?= go

.PHONY: all build check robust bench bench-parallel bench-obs faults clean

all: check

build:
	$(GO) build ./...

check: build
	$(GO) vet ./...
	$(GO) test ./...

# Robustness tier: the full suite under the race detector (slower;
# includes the fault-injection chaos sweeps, the parallel-kernel
# determinism matrix, and the golden-trace determinism test), plus the
# observability overhead gate.
robust: bench-obs
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Wall-clock benchmark of the execution knobs (sharded tick, idle
# fast-forward, sweep-level concurrency). Writes BENCH_parallel.json,
# which also records per-run bit-identity against the sequential
# baseline; see README.md "Performance" for how to read it.
bench-parallel:
	$(GO) run ./cmd/pabstbench -out BENCH_parallel.json

# Observability overhead gate. Times the same workload with probes off,
# with a ring-only observer, and with a streaming JSONL sink, checks the
# three runs stay bit-identical, and writes BENCH_obs.json. The disabled
# configuration must stay within noise of the probe-free baseline.
bench-obs:
	$(GO) run ./cmd/pabstbench -suite obs -out BENCH_obs.json

# Quick clean-vs-faulted comparison (the BENCH_faults.json scenario).
faults:
	$(GO) run ./cmd/pabstsim -scale quick faults

clean:
	$(GO) clean ./...
