# Build and test tiers. `make check` is the tier-1 gate (build + vet +
# tests); `make robust` adds the race detector, which the parallel tick
# kernel and the fault-injection chaos sweeps are expected to pass too.

GO ?= go

.PHONY: all build check robust bench bench-parallel bench-obs bench-ckpt bench-hotpath bench-policies bench-twin bench-scale bench-scale-quick serve-smoke faults lint-deprecated lint-docs clean

all: check

build:
	$(GO) build ./...

check: build lint-deprecated lint-docs
	$(GO) vet ./...
	$(GO) test ./...
	$(MAKE) bench-scale-quick

# Robustness tier: the full suite under the race detector (slower;
# includes the fault-injection chaos sweeps, the parallel-kernel
# determinism matrix, the golden-trace determinism test, and the sweep
# service's chaos acceptance), plus the observability overhead,
# checkpoint warm-start, hot-path, cross-policy Pareto, analytical-twin
# divergence, and sweep-service smoke gates.
robust: bench-obs bench-ckpt bench-hotpath bench-policies bench-twin bench-scale serve-smoke
	$(GO) test -race ./...

# Deprecated-accessor gate: the one-off System observation accessors
# superseded by Snapshot() were removed from the public API; this gate
# keeps them from creeping back into commands, examples, or the public
# surface. snap.GovernorMs( / Snapshot().GovernorMs( is the blessed
# Snapshot method of the same name. The second block bans the
# deprecated per-experiment wrappers outside internal/exp: commands and
# examples must go through the unified registry (exp.ExperimentByName /
# exp.RunExperimentScale). bench_test.go deliberately pins the
# wrappers' behavior.
lint-deprecated:
	@matches=$$(grep -rnE '\.(ClassIPC|TileIPCs|ClassMissLatency|ClassMCReadLatency|SaturatedLastEpoch|MCUtilizations|L3OccupancyOf|GovernorState|GovernorMs|Share)\(' \
		--include='*.go' cmd examples internal/exp policy *.go \
		| grep -v 'snap\.GovernorMs(' | grep -v 'Snapshot()\.GovernorMs(' || true); \
	if [ -n "$$matches" ]; then \
		echo "$$matches"; \
		echo 'lint-deprecated: use Snapshot() instead of the accessors above'; \
		exit 1; \
	fi
	@matches=$$(grep -rnE 'exp\.(Fig1|Fig5|Fig7|Fig10|Fig11|ExtStatic|ExtSkew|ExtHetero|ExtNoC|Faults|RunRegulation|RunIsolationWorkload|RunPolicyPareto)\(' \
		--include='*.go' cmd examples policy *.go \
		| grep -v '^bench_test\.go:' | grep -v '^trace_test\.go:' || true); \
	if [ -n "$$matches" ]; then \
		echo "$$matches"; \
		echo 'lint-deprecated: run experiments through the registry (exp.ExperimentByName + exp.RunExperimentScale) instead of the deprecated wrappers'; \
		exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Wall-clock benchmark of the execution knobs (sharded tick, idle
# fast-forward, sweep-level concurrency). Writes BENCH_parallel.json,
# which also records per-run bit-identity against the sequential
# baseline; see README.md "Performance" for how to read it.
bench-parallel:
	$(GO) run ./cmd/pabstbench -out BENCH_parallel.json

# Observability overhead gate. Times the same workload with probes off,
# with a ring-only observer, and with a streaming JSONL sink, checks the
# three runs stay bit-identical, and writes BENCH_obs.json. The disabled
# configuration must stay within noise of the probe-free baseline.
bench-obs:
	$(GO) run ./cmd/pabstbench -suite obs -out BENCH_obs.json

# Checkpoint subsystem gate. Measures serialized size, save/restore
# latency, and the warm-start speedup of restoring one shared
# post-warmup checkpoint across a reweighted sweep; every warm-started
# run must match its cold twin byte-for-byte. Writes BENCH_ckpt.json.
bench-ckpt:
	$(GO) run ./cmd/pabstbench -suite ckpt -warmup 400000 -cycles 150000 -out BENCH_ckpt.json

# Hot-path gate. Times the indexed memory-controller datapath against
# the frozen pre-index scan (dram.RefController) at front-end queue
# depths 8/32/128 under identical deterministic traffic, recording
# ns/cycle, allocs/cycle, and a service-stream fingerprint per run.
# The indexed run must stay allocation-free and fingerprint-identical
# to the scan. Writes BENCH_hotpath.json.
bench-hotpath:
	$(GO) run ./cmd/pabstbench -suite hotpath -out BENCH_hotpath.json

# Sweep-service gate. Runs the control plane end to end over real HTTP
# — submit a batch, complete, drain, journal compacts to empty — and
# checks that duplicate specs report identical result fingerprints.
# Writes BENCH_serve.json with submit-to-complete and drain latency.
serve-smoke:
	$(GO) run ./cmd/pabstserve -smoke -out BENCH_serve.json

# Cross-policy Pareto gate. Sweeps every registered QoS mechanism pair
# (pabst+pabst, bankreg+fcfs, lmsar+fcfs, none+dpq) across the
# utilization axis on the 7:3 stream mix and records each load's Pareto
# frontier on (share fidelity, hi-class p99 latency). Writes
# BENCH_policies.json; see EXPERIMENTS.md "Cross-policy Pareto sweep".
bench-policies:
	$(GO) run ./cmd/pabstsweep -policies -scale quick -parallel 6 -workers 2 -out BENCH_policies.json

# Analytical-twin divergence gate. Simulates the fig1/fig5 regulation
# points and the full cross-policy Pareto grid, predicts each with the
# M/G/1-style twin (internal/twin), and fails if the mean share, p99, or
# utilization error breaches the tolerances declared in
# internal/exp/twinbench.go. Writes BENCH_twin.json; see DESIGN.md
# "Analytical twin".
bench-twin:
	$(GO) run ./cmd/pabstsweep -twin -scale quick -parallel 6 -workers 2 -out BENCH_twin.json

# Event-kernel scaling study: cycle vs event dispatch across three axes
# — 64-, 256-, and 1024-tile idle-heavy bursty meshes, the non-PABST
# source-policy zoo (static/bankreg/lmsar) at 256 tiles, and an
# MSHR-saturated strict-model 256-tile mesh where wake-on-completion is
# the only thing letting blocked cores sleep. Verifies the two kernels
# stay bit-identical (late wakes included) in every cell and gates on
# the 64-tile no-regression bound (<= 1.10x), the MSHR-saturation floor
# (>= 1.5x), and the policy-axis floor (>= 5x for at least one
# non-PABST policy). Writes BENCH_scale.json; see DESIGN.md
# "Event-driven kernel".
bench-scale:
	$(GO) run ./cmd/pabstbench -suite scale -cycles 100000 -out BENCH_scale.json

# The tier-1 slice of the scaling study: every scenario at the 64-tile
# mesh only, gating on bit-identity, zero late wakes, and the 64-tile
# no-regression bound (the full-suite speedup floors need the larger
# meshes and stay in `make robust`). Writes BENCH_scale_quick.json.
bench-scale-quick:
	$(GO) run ./cmd/pabstbench -suite scale -quick -cycles 60000 -out BENCH_scale_quick.json

# Documentation gate. Validates intra-repo markdown links, requires a
# package comment on every internal package, and fails if a registered
# QoS policy is missing from the generated reference (docs/POLICIES.md —
# regenerate with `go run ./cmd/pabstdocs -write`).
lint-docs:
	$(GO) run ./cmd/pabstdocs

# Quick clean-vs-faulted comparison (the BENCH_faults.json scenario).
faults:
	$(GO) run ./cmd/pabstsim -scale quick faults

clean:
	$(GO) clean ./...
