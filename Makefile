# Build and test tiers. `make check` is the tier-1 gate (build + tests);
# `make robust` is the robustness tier (vet + the race detector), which
# the fault-injection and degradation tests are expected to pass too.

GO ?= go

.PHONY: all build check robust bench faults clean

all: check

build:
	$(GO) build ./...

check: build
	$(GO) test ./...

# Robustness tier: static analysis plus the full suite under the race
# detector (slower; includes the fault-injection chaos sweeps).
robust:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Quick clean-vs-faulted comparison (the BENCH_faults.json scenario).
faults:
	$(GO) run ./cmd/pabstsim -scale quick faults

clean:
	$(GO) clean ./...
