package pabst_test

import (
	"testing"

	"pabst"
)

// TestL3OccupancyMonitor exercises the Section II-B LLC occupancy query
// through the public API: a cache-resident class's occupancy converges
// to its footprint and stays inside its partition allowance.
func TestL3OccupancyMonitor(t *testing.T) {
	cfg := pabst.Scaled8Config()
	cfg.PABST.EpochCycles = 2000
	cfg.BWWindow = 2000
	b := pabst.NewBuilder(cfg, pabst.ModePABST)
	res := b.AddClass("resident", 1, cfg.L3Ways/2)
	agg := b.AddClass("aggressor", 1, cfg.L3Ways/2)

	// 512 KiB footprint at a 64 B stride (every line touched): bigger
	// than the 256 KiB L2, far under the class's 2 MiB L3 partition.
	footprint := uint64(512 << 10)
	region := pabst.Region{Base: 1 << 40, Size: footprint}
	b.Attach(0, res, pabst.Stream("resident", region, 64, false))
	for i := 1; i < 8; i++ {
		b.Attach(i, agg, pabst.Stream("agg", pabst.TileRegion(i), 128, false))
	}
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys.Warmup(400_000)

	snap := sys.Snapshot()
	occ := snap.Class(res).L3OccupancyBytes
	if occ < footprint/2 {
		t.Fatalf("resident class occupies %d B of its %d B footprint", occ, footprint)
	}
	partition := uint64(cfg.L3Ways/2) * uint64(cfg.L3TotalBytes()) / uint64(cfg.L3Ways)
	if occ > partition {
		t.Fatalf("occupancy %d exceeds the class partition %d", occ, partition)
	}
	// The aggressor's occupancy is bounded by its own partition too.
	if aggOcc := snap.Class(agg).L3OccupancyBytes; aggOcc > partition {
		t.Fatalf("aggressor occupancy %d exceeds its partition %d", aggOcc, partition)
	}
}

// TestRecordReplayThroughSystem pins that a recorded trace reproduces
// the generator's system-level behavior when replayed.
func TestRecordReplayThroughSystem(t *testing.T) {
	run := func(gen pabst.Generator) pabst.Metrics {
		cfg := pabst.Scaled8Config()
		cfg.PABST.EpochCycles = 2000
		cfg.BWWindow = 2000
		b := pabst.NewBuilder(cfg, pabst.ModeNone)
		c := b.AddClass("c", 1, cfg.L3Ways)
		b.Attach(0, c, gen)
		sys, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		sys.Run(50_000)
		return sys.Metrics()
	}

	// Record enough ops that the run never wraps the trace prematurely.
	rec := pabst.NewRecorder(pabst.Chaser("c", pabst.TileRegion(0), 4, 7), 0)
	direct := run(rec)

	replay, err := pabst.Replay("replayed", rec.Trace())
	if err != nil {
		t.Fatal(err)
	}
	replayed := run(replay)
	if direct != replayed {
		t.Fatalf("replay diverged:\n%+v\n%+v", direct, replayed)
	}
}
